package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic "GPSTRACE" (8 bytes)
//	version uvarint
//	meta length uvarint, meta as JSON (self-describing, rarely large)
//	phase count uvarint
//	per phase: index uvarint, label string, kernel count uvarint
//	per kernel: gpu uvarint, name string, computeOps uvarint,
//	            access count uvarint, packed access records
//	per access: op|scope|pattern packed byte order, threads, elem,
//	            stride uvarint, seed uvarint, addr uvarint (delta-coded)
//
// Strings are uvarint length + bytes. Access addresses are delta-encoded
// against the previous access in the kernel (zigzag), which compresses the
// mostly-sequential address streams stencil workloads emit.

const (
	magic   = "GPSTRACE"
	version = 1
)

// Encode writes p to w in the binary trace format.
func Encode(w io.Writer, p Program) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	putUvarint(bw, version)

	metaJSON, err := json.Marshal(p.Meta())
	if err != nil {
		return fmt.Errorf("trace: encoding meta: %w", err)
	}
	putUvarint(bw, uint64(len(metaJSON)))
	if _, err := bw.Write(metaJSON); err != nil {
		return err
	}

	rec := Collect(p)
	putUvarint(bw, uint64(len(rec.Ph)))
	for i := range rec.Ph {
		if err := encodePhase(bw, &rec.Ph[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a binary trace written by Encode.
func Decode(r io.Reader) (*Recorded, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("trace: bad magic %q", head)
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if v != version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}

	metaLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	metaJSON := make([]byte, metaLen)
	if _, err := io.ReadFull(br, metaJSON); err != nil {
		return nil, err
	}
	rec := &Recorded{}
	if err := json.Unmarshal(metaJSON, &rec.M); err != nil {
		return nil, fmt.Errorf("trace: decoding meta: %w", err)
	}

	numPhases, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if numPhases > 1<<24 {
		return nil, fmt.Errorf("trace: implausible phase count %d", numPhases)
	}
	if numPhases > 0 {
		rec.Ph = make([]Phase, 0, numPhases)
	}
	for pi := uint64(0); pi < numPhases; pi++ {
		ph, err := decodePhase(br)
		if err != nil {
			return nil, fmt.Errorf("trace: phase %d: %w", pi, err)
		}
		rec.Ph = append(rec.Ph, *ph)
	}
	return rec, nil
}

// EncodeJSON writes a human-readable JSON rendering of the trace, for
// inspection with standard tools. It is much larger than the binary format.
func EncodeJSON(w io.Writer, p Program) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Collect(p))
}

// DecodeJSON reads a trace written by EncodeJSON.
func DecodeJSON(r io.Reader) (*Recorded, error) {
	rec := &Recorded{}
	if err := json.NewDecoder(r).Decode(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

func putUvarint(w *bufio.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putVarint(w *bufio.Writer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	w.Write(buf[:n])
}

func putString(w *bufio.Writer, s string) {
	putUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func getString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
