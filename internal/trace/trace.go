// Package trace defines the application trace representation that drives
// the simulator. It plays the role NVBit-collected SASS traces play for NVAS
// in the paper: a sequence of kernel launches per GPU, each kernel a stream
// of warp-level memory instructions (loads, stores, atomics, fences) with
// virtual addresses, plus global synchronization barriers between phases.
//
// Traces are produced synthetically by internal/workload (the paper's
// benchmarks were traced on real hardware, which this reproduction does not
// have; see DESIGN.md for the substitution argument) and consumed by
// internal/engine.
package trace

import (
	"fmt"
	"math"
)

// Op is the kind of a memory instruction.
type Op uint8

// Memory instruction kinds.
const (
	OpLoad   Op = iota // global load
	OpStore            // global store
	OpAtomic           // read-modify-write; never coalesced by the GPS write queue
	OpFence            // memory fence; Addr is ignored
)

func (o Op) String() string {
	switch o {
	case OpLoad:
		return "ld"
	case OpStore:
		return "st"
	case OpAtomic:
		return "atom"
	case OpFence:
		return "fence"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Scope is the synchronization scope of an access, following the NVIDIA
// memory model's weak/strong distinction: only sys-scoped operations demand
// inter-GPU visibility and ordering.
type Scope uint8

// Access scopes, weakest first.
const (
	ScopeWeak Scope = iota // plain access, no ordering demanded
	ScopeCTA               // strong within a thread block
	ScopeGPU               // strong within one GPU
	ScopeSys               // strong system-wide: visible to all GPUs
)

func (s Scope) String() string {
	switch s {
	case ScopeWeak:
		return "weak"
	case ScopeCTA:
		return "cta"
	case ScopeGPU:
		return "gpu"
	case ScopeSys:
		return "sys"
	}
	return fmt.Sprintf("scope(%d)", uint8(s))
}

// Pattern describes how a warp's lanes spread around the base address, which
// determines how many cache lines the SM coalescer emits per instruction.
type Pattern uint8

// Lane address patterns.
const (
	// PatContiguous: lane i accesses Addr + i*ElemBytes (unit stride, the
	// well-coalesced case typical of stencil codes).
	PatContiguous Pattern = iota
	// PatStrided: lane i accesses Addr + i*Stride bytes.
	PatStrided
	// PatScattered: lane i accesses a pseudo-random line within a window of
	// Stride cache lines starting at Addr (graph-style irregular access);
	// Seed makes the spread deterministic.
	PatScattered
)

func (p Pattern) String() string {
	switch p {
	case PatContiguous:
		return "contig"
	case PatStrided:
		return "strided"
	case PatScattered:
		return "scattered"
	}
	return fmt.Sprintf("pattern(%d)", uint8(p))
}

// Access is one warp-level memory instruction.
type Access struct {
	Op        Op
	Scope     Scope
	Pattern   Pattern
	Threads   uint8  // active lanes, 1..32
	ElemBytes uint8  // bytes accessed per lane (4 or 8)
	Stride    uint32 // PatStrided: bytes between lanes; PatScattered: window in lines
	Seed      uint32 // PatScattered: deterministic spread seed
	Addr      uint64 // base virtual address
}

// Bytes returns the number of useful bytes the instruction moves.
func (a Access) Bytes() uint64 {
	if a.Op == OpFence {
		return 0
	}
	return uint64(a.Threads) * uint64(a.ElemBytes)
}

// IsWrite reports whether the access modifies memory.
func (a Access) IsWrite() bool { return a.Op == OpStore || a.Op == OpAtomic }

// Validate reports structurally invalid accesses.
func (a Access) Validate() error {
	if a.Op > OpFence {
		return fmt.Errorf("trace: invalid op %d", a.Op)
	}
	if a.Scope > ScopeSys {
		return fmt.Errorf("trace: invalid scope %d", a.Scope)
	}
	if a.Op == OpFence {
		return nil
	}
	if a.Threads == 0 || a.Threads > 32 {
		return fmt.Errorf("trace: %d active lanes out of range 1..32", a.Threads)
	}
	if a.ElemBytes != 1 && a.ElemBytes != 2 && a.ElemBytes != 4 && a.ElemBytes != 8 && a.ElemBytes != 16 {
		return fmt.Errorf("trace: element size %d not a machine width", a.ElemBytes)
	}
	if a.Pattern > PatScattered {
		return fmt.Errorf("trace: invalid pattern %d", a.Pattern)
	}
	if a.Pattern == PatScattered && a.Stride == 0 {
		return fmt.Errorf("trace: scattered access with empty window")
	}
	return nil
}

// Kernel is one kernel launch on one GPU: its instruction stream plus a
// count of arithmetic operations for the compute-time model.
type Kernel struct {
	GPU        int
	Name       string
	ComputeOps uint64
	// LocalStreamBytes is private, GPU-local streaming traffic the kernel
	// performs beyond the recorded shared-region accesses (temporaries,
	// coefficient tables, re-read tiles). It is carried analytically rather
	// than as per-line records to keep traces compact; no paradigm ever
	// moves it between GPUs.
	LocalStreamBytes uint64
	// Exactly one of Accesses and Col describes the instruction stream.
	// Accesses is the flat array-of-structs form (hand-built traces, the
	// binary codec); Col is the compressed columnar form internal/workload
	// emits. Consumers that replay sequentially should use EachBlock or a
	// BlockDecoder, which handle both.
	Accesses []Access
	Col      *ColumnAccesses
}

// NumAccesses returns the kernel's instruction count in either storage form.
func (k *Kernel) NumAccesses() int {
	if k.Col != nil {
		return k.Col.Len()
	}
	return len(k.Accesses)
}

// EachBlock yields the kernel's access stream in decode-order chunks: the
// whole flat slice at once, or one decoded block at a time through dec
// (whose buffer each yielded slice aliases). Iteration stops early if yield
// returns false. The only possible errors are spill-file I/O and internal
// codec corruption.
func (k *Kernel) EachBlock(dec *BlockDecoder, yield func([]Access) bool) error {
	if k.Col == nil {
		if len(k.Accesses) > 0 {
			yield(k.Accesses)
		}
		return nil
	}
	for i := 0; i < k.Col.NumBlocks(); i++ {
		accs, err := dec.Decode(k.Col, i)
		if err != nil {
			return err
		}
		if !yield(accs) {
			return nil
		}
	}
	return nil
}

// FlatAccesses materializes the kernel's stream as one flat slice. Flat
// kernels return their slice directly (no copy); columnar kernels decode
// every block. Intended for tests and inspection tools, not replay.
func (k *Kernel) FlatAccesses() []Access {
	if k.Col == nil {
		return k.Accesses
	}
	out := make([]Access, 0, k.Col.Len())
	var dec BlockDecoder
	if err := k.EachBlock(&dec, func(accs []Access) bool {
		out = append(out, accs...)
		return true
	}); err != nil {
		panic(fmt.Sprintf("trace: decoding columnar kernel %q: %v", k.Name, err))
	}
	return out
}

// Phase groups the kernels that run concurrently between two global
// synchronization barriers. The end of a phase carries the implicit
// sys-scoped release of each grid's completion.
type Phase struct {
	Index   int
	Label   string
	Kernels []Kernel
}

// RegionKind classifies an allocation for paradigm decisions.
type RegionKind uint8

// Region kinds.
const (
	// RegionShared is allocated in the shared address space: candidates for
	// GPS replication, UM migration, or memcpy mirroring.
	RegionShared RegionKind = iota
	// RegionPrivate is GPU-local scratch that no paradigm ever moves.
	RegionPrivate
)

// Region is one allocation in the trace's virtual address space.
type Region struct {
	Name string
	Kind RegionKind
	Base uint64
	Size uint64
	// Writers and Readers describe which GPUs touch the region at all, used
	// by the UM-with-hints paradigm to place pages and emit prefetches the
	// way an expert programmer would.
	Writers []int
	Readers []int
	// ManualSubscribers, when non-nil, pins the GPS subscriber set of the
	// region (the optional `manual` parameter of cudaMallocGPS, Section 4):
	// automatic profiling never unsubscribes these pages.
	ManualSubscribers []int
}

// Contains reports whether va falls inside the region.
func (r Region) Contains(va uint64) bool {
	return va >= r.Base && va-r.Base < r.Size
}

// L2Model is the analytic cache model used by the timing simulator. Strong
// scaling shrinks each GPU's share of the working set, raising the L2 hit
// rate with GPU count; this is the mechanism behind EQWP's super-linear
// speedup in the paper (L2 hit rate 55% -> 68% when scaling to 4 GPUs).
type L2Model struct {
	BaseHit          float64 // L2 hit rate with the full working set on one GPU
	SlopePerDoubling float64 // added hit rate per doubling of GPU count
	MaxHit           float64 // saturation
}

// HitRate returns the modeled L2 hit rate when the working set is split
// across `split` GPUs.
func (m L2Model) HitRate(split int) float64 {
	if split < 1 {
		split = 1
	}
	h := m.BaseHit + m.SlopePerDoubling*math.Log2(float64(split))
	if h > m.MaxHit {
		h = m.MaxHit
	}
	if h < 0 {
		h = 0
	}
	return h
}

// Meta describes a whole program trace.
type Meta struct {
	Name    string
	NumGPUs int
	Regions []Region
	// ProfilePhases is the number of leading phases that form the GPS
	// profiling iteration (between cuGPSTrackingStart/Stop in Listing 1).
	ProfilePhases int
	// WorkingSetPerGPU is the per-GPU resident data footprint in bytes,
	// used by the analytic L2 model.
	WorkingSetPerGPU uint64
	// ComputePerPhase hints the timing model about per-phase arithmetic;
	// informative only (kernels carry authoritative counts).
	ComputePerPhase uint64
	// L2 is the analytic cache model for this application.
	L2 L2Model
}

// RegionOf returns the region containing va, or nil.
func (m *Meta) RegionOf(va uint64) *Region {
	for i := range m.Regions {
		if m.Regions[i].Contains(va) {
			return &m.Regions[i]
		}
	}
	return nil
}

// Validate checks internal consistency of the metadata.
func (m *Meta) Validate() error {
	if m.NumGPUs < 1 {
		return fmt.Errorf("trace: %d GPUs", m.NumGPUs)
	}
	for i, r := range m.Regions {
		if r.Size == 0 {
			return fmt.Errorf("trace: region %q is empty", r.Name)
		}
		for j := 0; j < i; j++ {
			o := m.Regions[j]
			if r.Base < o.Base+o.Size && o.Base < r.Base+r.Size {
				return fmt.Errorf("trace: regions %q and %q overlap", r.Name, o.Name)
			}
		}
	}
	return nil
}

// Program is a source of phases. Implementations stream phases so that
// multi-gigabyte traces never need to be resident at once.
type Program interface {
	// Meta returns the static description of the trace.
	Meta() Meta
	// Phases calls yield for each phase in order, stopping early if yield
	// returns false.
	Phases(yield func(*Phase) bool)
}

// Recorded is an in-memory Program, used by tests, the codecs, and small
// hand-built examples.
type Recorded struct {
	M  Meta
	Ph []Phase
}

// Meta implements Program.
func (r *Recorded) Meta() Meta { return r.M }

// Phases implements Program.
func (r *Recorded) Phases(yield func(*Phase) bool) {
	for i := range r.Ph {
		if !yield(&r.Ph[i]) {
			return
		}
	}
}

// Collect materializes any Program into a Recorded trace. Flat access
// slices are deep-copied; columnar stores are shared by pointer (their
// encoded blocks are immutable).
func Collect(p Program) *Recorded {
	rec := &Recorded{M: p.Meta()}
	p.Phases(func(ph *Phase) bool {
		cp := *ph
		cp.Kernels = make([]Kernel, len(ph.Kernels))
		copy(cp.Kernels, ph.Kernels)
		for i := range cp.Kernels {
			if cp.Kernels[i].Col != nil {
				continue
			}
			acc := make([]Access, len(ph.Kernels[i].Accesses))
			copy(acc, ph.Kernels[i].Accesses)
			cp.Kernels[i].Accesses = acc
		}
		rec.Ph = append(rec.Ph, cp)
		return true
	})
	return rec
}

// Spill moves every columnar kernel's blocks into s, returning the heap
// bytes freed. Kernels already spilled (or flat) are skipped. On a write
// error the remaining kernels stay resident and the first error is returned
// alongside whatever was freed; the trace remains fully readable either way.
func (r *Recorded) Spill(s *SpillFile) (freed uint64, err error) {
	for pi := range r.Ph {
		for ki := range r.Ph[pi].Kernels {
			f, e := r.Ph[pi].Kernels[ki].Col.SpillTo(s)
			freed += f
			if e != nil && err == nil {
				err = e
			}
		}
	}
	return freed, err
}

// Columnize materializes p with every kernel's stream re-encoded into
// compressed columnar blocks. Used by tests to cross-check the two replay
// paths and by tools converting flat traces.
func Columnize(p Program) *Recorded {
	rec := Collect(p)
	for pi := range rec.Ph {
		for ki := range rec.Ph[pi].Kernels {
			k := &rec.Ph[pi].Kernels[ki]
			if k.Col != nil || len(k.Accesses) == 0 {
				continue
			}
			k.Col = EncodeColumns(k.Accesses)
			k.Accesses = nil
		}
	}
	return rec
}

// Flatten materializes p with every kernel in the flat array-of-structs
// form, decoding columnar kernels. The inverse of Columnize.
func Flatten(p Program) *Recorded {
	rec := Collect(p)
	for pi := range rec.Ph {
		for ki := range rec.Ph[pi].Kernels {
			k := &rec.Ph[pi].Kernels[ki]
			if k.Col == nil {
				continue
			}
			k.Accesses = k.FlatAccesses()
			k.Col = nil
		}
	}
	return rec
}

// Stats summarizes a program for inspection tools.
type Stats struct {
	Phases    int
	Kernels   int
	Accesses  uint64
	Loads     uint64
	Stores    uint64
	Atomics   uint64
	Fences    uint64
	SysScoped uint64
	Bytes     uint64
}

// Summarize scans a program and tallies instruction counts. Columnar
// kernels are decoded block by block with constant memory.
func Summarize(p Program) Stats {
	var s Stats
	var dec BlockDecoder
	p.Phases(func(ph *Phase) bool {
		s.Phases++
		s.Kernels += len(ph.Kernels)
		for i := range ph.Kernels {
			err := ph.Kernels[i].EachBlock(&dec, func(accs []Access) bool {
				for _, a := range accs {
					s.Accesses++
					s.Bytes += a.Bytes()
					switch a.Op {
					case OpLoad:
						s.Loads++
					case OpStore:
						s.Stores++
					case OpAtomic:
						s.Atomics++
					case OpFence:
						s.Fences++
					}
					if a.Scope == ScopeSys {
						s.SysScoped++
					}
				}
				return true
			})
			if err != nil {
				panic(fmt.Sprintf("trace: summarizing kernel %q: %v", ph.Kernels[i].Name, err))
			}
		}
		return true
	})
	return s
}
