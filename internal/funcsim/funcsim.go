// Package funcsim is the functional (value-accurate) companion to the
// timing simulator: a multi-GPU memory with real data in it, implementing
// GPS semantics operationally — per-subscriber replicas, local loads,
// stores coalesced per cache line in a per-GPU publish queue, in-order
// delivery to every subscriber, and full drains at barriers (the implicit
// sys-scoped release at the end of every grid).
//
// Its purpose is end-to-end validation of the paper's correctness argument
// (Sections 3.2-3.3): a data-parallel program that synchronizes its
// cross-GPU sharing with barriers computes bit-identical results under GPS
// replication as it does on a single coherent memory — while between
// barriers, remote replicas are legitimately stale (the relaxed behavior
// GPS exploits for coalescing). The tests run a real Jacobi solver both
// ways and compare every word.
package funcsim

import (
	"fmt"
	"math/bits"
	"sort"
)

// Word is the access granularity: 8-byte aligned float64 values.
const wordBytes = 8

// Machine is an n-GPU memory with GPS publish-subscribe semantics.
type Machine struct {
	n            int
	pageBytes    uint64
	lineBytes    uint64
	wordsPerLine int

	replicas []map[uint64]float64 // per GPU: word address -> value
	queues   []*publishQueue      // per GPU
	subs     map[uint64]uint64    // page -> subscriber bitmask
	defSubs  uint64               // default: all GPUs

	// Delivered counts lines delivered to remote replicas (traffic proxy).
	Delivered uint64
}

// pendingLine is the coalescing buffer for one queued cache line: a dense
// word-value vector plus a bitmap of which words the GPU actually wrote.
// Delivery walks the set bits in ascending word order, replacing the old
// per-line hash map on the store hot path.
type pendingLine struct {
	mask []uint64  // bitmap over word slots
	vals []float64 // indexed by word offset within the line
}

// publishQueue coalesces pending line writes in insertion order.
type publishQueue struct {
	order []uint64                // line addresses, least recently added first
	lines map[uint64]*pendingLine // resident lines
	free  []*pendingLine          // drained buffers, recycled by the next store
	last  uint64                  // most recently stored-to line...
	lastP *pendingLine            // ...and its buffer (consecutive-store cache)
}

// NewMachine builds a machine with all GPUs subscribed to every page.
func NewMachine(n int, pageBytes, lineBytes uint64) (*Machine, error) {
	if n < 1 || n > 64 {
		return nil, fmt.Errorf("funcsim: %d GPUs out of range", n)
	}
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 || pageBytes%lineBytes != 0 {
		return nil, fmt.Errorf("funcsim: invalid geometry page=%d line=%d", pageBytes, lineBytes)
	}
	wpl := int(lineBytes / wordBytes)
	if wpl == 0 {
		wpl = 1 // sub-word lines degenerate to one word per line
	}
	m := &Machine{
		n:            n,
		pageBytes:    pageBytes,
		lineBytes:    lineBytes,
		wordsPerLine: wpl,
		subs:         map[uint64]uint64{},
		defSubs:      allMask(n),
	}
	for g := 0; g < n; g++ {
		m.replicas = append(m.replicas, map[uint64]float64{})
		m.queues = append(m.queues, &publishQueue{lines: map[uint64]*pendingLine{}})
	}
	return m, nil
}

// get returns a cleared pendingLine, recycling a drained buffer when one is
// available.
func (q *publishQueue) get(words int) *pendingLine {
	if n := len(q.free); n > 0 {
		p := q.free[n-1]
		q.free = q.free[:n-1]
		clear(p.mask)
		return p
	}
	return &pendingLine{
		mask: make([]uint64, (words+63)/64),
		vals: make([]float64, words),
	}
}

func allMask(n int) uint64 {
	if n == 64 {
		return ^uint64(0)
	}
	return 1<<n - 1
}

// SetSubscribers pins the subscriber set for every page overlapping
// [base, base+size).
func (m *Machine) SetSubscribers(base, size uint64, gpus ...int) error {
	if len(gpus) == 0 {
		return fmt.Errorf("funcsim: empty subscriber set")
	}
	var mask uint64
	for _, g := range gpus {
		if g < 0 || g >= m.n {
			return fmt.Errorf("funcsim: GPU %d out of range", g)
		}
		mask |= 1 << g
	}
	for p := base / m.pageBytes; p <= (base+size-1)/m.pageBytes; p++ {
		m.subs[p] = mask
	}
	return nil
}

func (m *Machine) subscribers(addr uint64) uint64 {
	if mask, ok := m.subs[addr/m.pageBytes]; ok {
		return mask
	}
	return m.defSubs
}

func (m *Machine) subscribed(gpu int, addr uint64) bool {
	return m.subscribers(addr)&(1<<gpu) != 0
}

func checkAligned(addr uint64) {
	if addr%wordBytes != 0 {
		panic(fmt.Sprintf("funcsim: unaligned word address %#x", addr))
	}
}

// Store performs a weak store by gpu: the local replica (if subscribed)
// updates immediately — a GPU always reads its own writes — and the line
// enters the publish queue for eventual replication to remote subscribers.
func (m *Machine) Store(gpu int, addr uint64, v float64) {
	checkAligned(addr)
	if m.subscribed(gpu, addr) {
		m.replicas[gpu][addr] = v
	}
	q := m.queues[gpu]
	line := addr &^ (m.lineBytes - 1)
	p := q.lastP
	if p == nil || q.last != line {
		p = q.lines[line]
		if p == nil {
			p = q.get(m.wordsPerLine)
			q.lines[line] = p
			q.order = append(q.order, line)
		}
		q.last, q.lastP = line, p
	}
	w := (addr - line) / wordBytes
	p.mask[w>>6] |= 1 << (w & 63)
	p.vals[w] = v
}

// Load performs a load by gpu: from the local replica when subscribed,
// otherwise remotely from the lowest-numbered subscriber (Section 3.2: a
// non-subscriber load does not fault, it issues remotely).
func (m *Machine) Load(gpu int, addr uint64) float64 {
	checkAligned(addr)
	if m.subscribed(gpu, addr) {
		return m.replicas[gpu][addr]
	}
	host := bits.TrailingZeros64(m.subscribers(addr))
	if host >= m.n {
		return 0
	}
	return m.replicas[host][addr]
}

// Drain delivers gpu's least recently added queued line to every remote
// subscriber (the watermark drain path). It reports whether anything
// drained.
func (m *Machine) Drain(gpu int) bool {
	q := m.queues[gpu]
	if len(q.order) == 0 {
		return false
	}
	line := q.order[0]
	q.order = q.order[1:]
	p := q.lines[line]
	m.deliver(gpu, line, p)
	delete(q.lines, line)
	q.free = append(q.free, p)
	if q.last == line {
		q.lastP = nil // the recycled buffer must not shadow a future store
	}
	return true
}

// Flush drains gpu's entire queue in insertion order (a sys-scoped fence).
func (m *Machine) Flush(gpu int) {
	for m.Drain(gpu) {
	}
}

// Barrier is the global synchronization ending a phase: every GPU's queue
// flushes and delivers (the implicit sys-scoped release at the end of every
// grid plus the inter-GPU barrier).
func (m *Machine) Barrier() {
	for g := 0; g < m.n; g++ {
		m.Flush(g)
	}
}

func (m *Machine) deliver(src int, line uint64, p *pendingLine) {
	mask := m.subscribers(line)
	for dst := 0; dst < m.n; dst++ {
		if dst == src || mask&(1<<dst) == 0 {
			continue
		}
		rep := m.replicas[dst]
		for mw, bitsLeft := range p.mask {
			for bitsLeft != 0 {
				w := mw*64 + bits.TrailingZeros64(bitsLeft)
				bitsLeft &= bitsLeft - 1
				rep[line+uint64(w)*wordBytes] = p.vals[w]
			}
		}
		m.Delivered++
	}
}

// PendingLines returns the number of lines still queued on gpu.
func (m *Machine) PendingLines(gpu int) int { return len(m.queues[gpu].order) }

// ReplicasConsistent reports whether, for every address any GPU holds, all
// subscribers of that address agree on the value. Only meaningful at
// barriers (between them, staleness is allowed by the memory model).
func (m *Machine) ReplicasConsistent() error {
	addrs := map[uint64]bool{}
	for g := 0; g < m.n; g++ {
		for a := range m.replicas[g] {
			addrs[a] = true
		}
	}
	sorted := make([]uint64, 0, len(addrs))
	for a := range addrs {
		sorted = append(sorted, a)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, a := range sorted {
		mask := m.subscribers(a)
		ref, refSet := 0.0, false
		for g := 0; g < m.n; g++ {
			if mask&(1<<g) == 0 {
				continue
			}
			v, ok := m.replicas[g][a]
			if !ok {
				continue
			}
			if !refSet {
				ref, refSet = v, true
				continue
			}
			if v != ref {
				return fmt.Errorf("funcsim: replicas diverge at %#x: %v vs %v", a, ref, v)
			}
		}
	}
	return nil
}
