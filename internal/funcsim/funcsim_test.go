package funcsim

import (
	"math"
	"math/rand"
	"testing"
)

func newMachine(t *testing.T, n int) *Machine {
	t.Helper()
	m, err := NewMachine(n, 64<<10, 128)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReadYourOwnWrites(t *testing.T) {
	m := newMachine(t, 2)
	m.Store(0, 0, 42)
	if got := m.Load(0, 0); got != 42 {
		t.Fatalf("own write invisible: %v", got)
	}
	// Remote replica stale until delivery.
	if got := m.Load(1, 0); got != 0 {
		t.Fatalf("remote saw undelivered write: %v", got)
	}
	m.Barrier()
	if got := m.Load(1, 0); got != 42 {
		t.Fatalf("barrier did not deliver: %v", got)
	}
}

func TestCoalescingDeliversLatestValue(t *testing.T) {
	m := newMachine(t, 2)
	m.Store(0, 8, 1)
	m.Store(0, 8, 2) // coalesces in the queue
	if m.PendingLines(0) != 1 {
		t.Fatalf("pending = %d, want 1 coalesced line", m.PendingLines(0))
	}
	m.Barrier()
	if got := m.Load(1, 8); got != 2 {
		t.Fatalf("consumer saw %v, want the coalesced final value 2", got)
	}
}

func TestDrainDeliversOldestFirst(t *testing.T) {
	m := newMachine(t, 2)
	m.Store(0, 0, 1)   // line 0
	m.Store(0, 128, 2) // line 1
	if !m.Drain(0) {
		t.Fatal("drain failed")
	}
	if got := m.Load(1, 0); got != 1 {
		t.Fatal("oldest line not delivered first")
	}
	if got := m.Load(1, 128); got != 0 {
		t.Fatal("newer line delivered early")
	}
	m.Flush(0)
	if got := m.Load(1, 128); got != 2 {
		t.Fatal("flush incomplete")
	}
	if m.Drain(0) {
		t.Fatal("drain on empty queue reported work")
	}
}

func TestSubscriptionScopedDelivery(t *testing.T) {
	m := newMachine(t, 4)
	if err := m.SetSubscribers(0, 64<<10, 0, 1); err != nil {
		t.Fatal(err)
	}
	m.Store(0, 0, 7)
	m.Barrier()
	if got := m.Load(1, 0); got != 7 {
		t.Fatal("subscriber missed delivery")
	}
	// Non-subscriber loads resolve remotely from the first subscriber: the
	// value is visible even though GPU 2 holds no replica.
	if got := m.Load(2, 0); got != 7 {
		t.Fatalf("non-subscriber remote load = %v, want 7", got)
	}
	if _, resident := m.replicas[2][0]; resident {
		t.Fatal("non-subscriber received a replica")
	}
}

func TestNonSubscriberStoreStillPublishes(t *testing.T) {
	// Section 3.2: subscriptions are hints, not functional requirements. A
	// store by a non-subscriber has no local replica but must reach the
	// subscribers.
	m := newMachine(t, 4)
	if err := m.SetSubscribers(0, 64<<10, 1, 2); err != nil {
		t.Fatal(err)
	}
	m.Store(0, 0, 9) // GPU 0 is not subscribed
	m.Barrier()
	for _, g := range []int{1, 2} {
		if got := m.Load(g, 0); got != 9 {
			t.Fatalf("subscriber %d saw %v, want 9", g, got)
		}
	}
	// The writer itself reads it back remotely.
	if got := m.Load(0, 0); got != 9 {
		t.Fatalf("non-subscriber writer read back %v", got)
	}
}

func TestReplicasConsistentDetectsDivergence(t *testing.T) {
	m := newMachine(t, 2)
	m.Store(0, 0, 1)
	m.Barrier()
	if err := m.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
	// Forge divergence.
	m.replicas[1][0] = 999
	if err := m.ReplicasConsistent(); err == nil {
		t.Fatal("divergence not detected")
	}
}

// jacobiGPS runs a 1D Jacobi relaxation on `gpus` simulated GPUs under GPS
// semantics: each GPU owns a contiguous span, reads one halo word from each
// neighbor, and a barrier separates iterations.
func jacobiGPS(t *testing.T, gpus, size, iters int) []float64 {
	t.Helper()
	m := newMachine(t, gpus)
	srcBase, dstBase := uint64(0), uint64(1<<20)
	addr := func(base uint64, i int) uint64 { return base + uint64(i)*wordBytes }

	// Initialize: GPU 0 writes the initial state, a barrier publishes it.
	for i := 0; i < size; i++ {
		m.Store(0, addr(srcBase, i), float64(i%17)+0.5)
		m.Store(0, addr(dstBase, i), 0)
	}
	m.Barrier()

	per := size / gpus
	for it := 0; it < iters; it++ {
		src, dst := srcBase, dstBase
		if it%2 == 1 {
			src, dst = dstBase, srcBase
		}
		for g := 0; g < gpus; g++ {
			lo, hi := g*per, (g+1)*per
			if g == gpus-1 {
				hi = size
			}
			for i := lo; i < hi; i++ {
				left, right := i-1, i+1
				sum := m.Load(g, addr(src, i)) * 2
				if left >= 0 {
					sum += m.Load(g, addr(src, left))
				}
				if right < size {
					sum += m.Load(g, addr(src, right))
				}
				m.Store(g, addr(dst, i), sum/4)
			}
		}
		m.Barrier()
		if err := m.ReplicasConsistent(); err != nil {
			t.Fatalf("iteration %d: %v", it, err)
		}
	}

	final := srcBase
	if iters%2 == 1 {
		final = dstBase
	}
	out := make([]float64, size)
	for i := range out {
		out[i] = m.Load(0, addr(final, i))
	}
	return out
}

// jacobiReference runs the same relaxation on one coherent array.
func jacobiReference(size, iters int) []float64 {
	src := make([]float64, size)
	dst := make([]float64, size)
	for i := range src {
		src[i] = float64(i%17) + 0.5
	}
	for it := 0; it < iters; it++ {
		for i := 0; i < size; i++ {
			sum := src[i] * 2
			if i > 0 {
				sum += src[i-1]
			}
			if i < size-1 {
				sum += src[i+1]
			}
			dst[i] = sum / 4
		}
		src, dst = dst, src
	}
	return src
}

// The paper's correctness claim, end to end: a barrier-synchronized
// multi-GPU program under GPS replication computes bit-identical results to
// a single coherent memory.
func TestJacobiBitIdenticalUnderGPS(t *testing.T) {
	const size, iters = 512, 8
	want := jacobiReference(size, iters)
	for _, gpus := range []int{1, 2, 4} {
		got := jacobiGPS(t, gpus, size, iters)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%d GPUs: word %d = %v, want %v (bit-exact)", gpus, i, got[i], want[i])
			}
		}
	}
}

// Property: any barrier-synchronized program with per-phase exclusive
// writers converges: after the barrier all subscribers agree.
func TestRandomExclusiveWriterProgramsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		gpus := 2 + rng.Intn(3)
		m := newMachine(t, gpus)
		for phase := 0; phase < 4; phase++ {
			// Partition 64 words among GPUs: exclusive writers per phase.
			for w := 0; w < 64; w++ {
				owner := (w + phase) % gpus
				m.Store(owner, uint64(w)*wordBytes, float64(trial*1000+phase*100+w))
				// Interleave opportunistic drains.
				if rng.Intn(4) == 0 {
					m.Drain(owner)
				}
			}
			m.Barrier()
			if err := m.ReplicasConsistent(); err != nil {
				t.Fatalf("trial %d phase %d: %v", trial, phase, err)
			}
		}
	}
}

// Between barriers, staleness is legal and observable: the relaxed window
// GPS exploits to coalesce.
func TestStalenessBetweenBarriersIsObservable(t *testing.T) {
	m := newMachine(t, 2)
	m.Store(0, 0, 1)
	m.Barrier()
	m.Store(0, 0, 2) // not yet delivered
	v0, v1 := m.Load(0, 0), m.Load(1, 0)
	if v0 != 2 {
		t.Fatal("writer must see its own store")
	}
	if v1 != 1 {
		t.Fatalf("remote should still see the old value, got %v", v1)
	}
}

func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(0, 64<<10, 128); err == nil {
		t.Fatal("zero GPUs accepted")
	}
	if _, err := NewMachine(2, 64<<10, 100); err == nil {
		t.Fatal("non-pow2 line accepted")
	}
	if _, err := NewMachine(2, 1000, 128); err == nil {
		t.Fatal("page not divisible by line accepted")
	}
	m := newMachine(t, 2)
	if err := m.SetSubscribers(0, 1, 5); err == nil {
		t.Fatal("out-of-range subscriber accepted")
	}
	if err := m.SetSubscribers(0, 1); err == nil {
		t.Fatal("empty subscriber set accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned access should panic")
		}
	}()
	m.Store(0, 3, 1)
}

func TestDeliveredCountsTraffic(t *testing.T) {
	m := newMachine(t, 4)
	m.Store(0, 0, 1)
	m.Barrier()
	if m.Delivered != 3 {
		t.Fatalf("Delivered = %d, want 3 (one line to each of 3 peers)", m.Delivered)
	}
	if math.IsNaN(float64(m.Delivered)) {
		t.Fatal("unreachable")
	}
}

// The correct cross-GPU accumulation pattern under GPS: per-GPU partial
// sums in each GPU's own slab (local atomics), folded by the owner after a
// barrier. This is how the graph workloads accumulate contributions without
// relying on cross-GPU atomic coherence.
func TestPerGPUPartialAccumulation(t *testing.T) {
	const gpus = 4
	m := newMachine(t, gpus)
	// partials[g] at word g; total at word 100.
	for g := 0; g < gpus; g++ {
		// Each GPU accumulates locally into its own partial slot.
		sum := 0.0
		for i := 0; i < 10; i++ {
			sum += float64(g + 1)
		}
		m.Store(g, uint64(g)*wordBytes, sum)
	}
	m.Barrier()
	// GPU 0 folds the partials — all local reads after the barrier.
	total := 0.0
	for g := 0; g < gpus; g++ {
		total += m.Load(0, uint64(g)*wordBytes)
	}
	m.Store(0, 100*wordBytes, total)
	m.Barrier()
	want := 10.0 * (1 + 2 + 3 + 4)
	for g := 0; g < gpus; g++ {
		if got := m.Load(g, 100*wordBytes); got != want {
			t.Fatalf("GPU %d sees total %v, want %v", g, got, want)
		}
	}
}
