// Package httpapi exposes the simulation service over a JSON REST API:
//
//	POST   /v1/jobs           submit a job spec; 202 queued, 200 cached or
//	                          coalesced, 400 invalid, 429 queue full
//	                          (with Retry-After), 503 shutting down
//	GET    /v1/jobs/{id}      poll status + progress
//	GET    /v1/jobs/{id}/result  fetch the report of a done job; 202 while
//	                          queued/running, 409 canceled, 500 failed
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	GET    /v1/healthz        liveness: status (ok | draining), node
//	                          identity, cluster role, peer liveness summary,
//	                          uptime, build info, worker/queue snapshot; 503
//	                          with the same JSON body while draining
//	GET    /v1/metrics        queue depth, worker utilization, cache
//	                          hit/miss, wall-clock accounting (JSON)
//	GET    /metrics           the same counters plus latency histograms in
//	                          Prometheus text exposition format (only wired
//	                          when a registry is configured)
//
// With a cluster configured (gpsd -node-id/-peers) the handler also routes:
// a submit whose canonical hash is owned by a peer is forwarded there, and
// status/result/cancel requests for a job ID carrying another node's prefix
// are proxied to that node — both guarded against forwarding loops by the
// X-GPS-Forwarded-From header. Three internal endpoints carry the
// node-to-node traffic:
//
//	GET    /v1/peer/results/{hash}       content-addressed cache lookup
//	POST   /v1/peer/steal?thief={node}   check one queued job out (work steal)
//	POST   /v1/peer/jobs/{id}/complete   land a stolen job's outcome back
//	POST   /v1/peer/journal              ingest a peer's replicated journal
//	                                     records (self-healing stream)
//
// When a job ID's prefix names a dead node, reads and cancels fall back to
// that node's takeover successor — the live node that adopted (or is about
// to adopt) its replicated jobs — instead of failing with 502.
//
// The result endpoint emits the same report schema as gpsbench -json
// (internal/report), so CLI and service output are byte-compatible.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"

	"gps/internal/client"
	"gps/internal/cluster"
	"gps/internal/obs"
	"gps/internal/service"
)

// Handler serves the REST API for one service.Server.
type Handler struct {
	svc     *service.Server
	cluster *cluster.Cluster // nil on a single-node daemon
	mux     *http.ServeMux
	handler http.Handler // mux, possibly wrapped in access logging
}

// Option customizes a Handler.
type Option func(*options)

type options struct {
	logger   *slog.Logger
	registry *obs.Registry
	cluster  *cluster.Cluster
}

// WithLogger wraps every request in access logging (method, path, status,
// bytes, latency) on l at Info level.
func WithLogger(l *slog.Logger) Option {
	return func(o *options) { o.logger = l }
}

// WithRegistry serves reg in Prometheus text format at GET /metrics and
// records per-request latency/status counters into it.
func WithRegistry(reg *obs.Registry) Option {
	return func(o *options) { o.registry = reg }
}

// WithCluster enables cluster routing: consistent-hash ownership on
// submit, read proxying by job-ID prefix, and the internal /v1/peer/*
// endpoints.
func WithCluster(c *cluster.Cluster) Option {
	return func(o *options) { o.cluster = c }
}

// New wires the routes.
func New(svc *service.Server, opts ...Option) *Handler {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	h := &Handler{svc: svc, cluster: o.cluster, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/jobs", h.submit)
	h.mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	h.mux.HandleFunc("GET /v1/jobs/{id}/result", h.result)
	h.mux.HandleFunc("DELETE /v1/jobs/{id}", h.cancel)
	h.mux.HandleFunc("GET /v1/healthz", h.healthz)
	h.mux.HandleFunc("GET /v1/metrics", h.metrics)
	h.mux.HandleFunc("GET /v1/cluster/metrics", h.clusterMetrics)
	if o.cluster != nil {
		h.mux.HandleFunc("GET /v1/peer/results/{hash}", h.peerResult)
		h.mux.HandleFunc("POST /v1/peer/steal", h.peerSteal)
		h.mux.HandleFunc("POST /v1/peer/jobs/{id}/complete", h.peerComplete)
		h.mux.HandleFunc("POST /v1/peer/journal", h.peerJournal)
	}
	if o.registry != nil {
		h.mux.Handle("GET /metrics", o.registry.Handler())
	}
	h.handler = h.mux
	if o.logger != nil || o.registry != nil {
		h.handler = obs.AccessLog(o.logger, o.registry, h.mux)
	}
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.handler.ServeHTTP(w, r) }

// writeJSON emits a JSON body with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// writeRaw passes a proxied response through byte-for-byte, so a report
// served via another node is identical to one served by the owner.
func writeRaw(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body) //nolint:errcheck // client gone; nothing to do
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// maxSpecBytes caps the request body on submit. Specs are small (a matrix of
// a few dozen cells is under a kilobyte); anything bigger is a client bug or
// an attempt to balloon the daemon's memory.
const maxSpecBytes = 1 << 20

// submitResponse decorates the job snapshot with what Submit did, so
// clients can tell a fresh execution from a coalesced or cached one.
type submitResponse struct {
	service.Status
	Outcome string `json:"outcome"` // accepted | coalesced | cached
}

func (h *Handler) submit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("spec exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad spec: " + err.Error()})
		return
	}
	var spec service.Spec
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad spec: " + err.Error()})
		return
	}

	// Cluster routing: the canonical hash names the owner node. A request
	// that already crossed a node boundary (the loop-guard header) is
	// always handled locally, so inconsistent ring views cannot loop; an
	// unreachable owner degrades to local handling — this node is the
	// hash's live-set successor once the probe marks the owner dead.
	if h.cluster != nil && r.Header.Get(cluster.ForwardHeader) == "" {
		if canon, cerr := spec.Canonicalize(); cerr == nil {
			if owner := h.cluster.Owner(canon.Hash()); owner != h.cluster.Self() {
				code, resp, ferr := h.cluster.ForwardSubmit(r.Context(), owner, body,
					r.Header.Get(obs.TraceparentHeader))
				if ferr == nil {
					writeRaw(w, code, resp)
					return
				}
				// fall through: serve locally as the fallback owner
			}
		}
		// Canonicalization errors fall through too: the local Submit
		// produces the proper 400.
	}

	// The incoming traceparent (from the client, or stamped by the node
	// that forwarded here) becomes the job's trace parent; without one a
	// fresh trace is minted at admission.
	parent, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	st, outcome, err := h.svc.SubmitTraced(spec, parent)
	switch {
	case errors.Is(err, service.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(h.svc.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, service.ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case errors.Is(err, service.ErrInvalidSpec):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	case err != nil:
		// Admission failed for a non-client reason (e.g. the journal append
		// could not be committed): the daemon's fault, not the spec's.
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	if st.Trace != nil {
		// Echo the job's trace position so callers can correlate follow-up
		// requests (and their own spans) with the job's distributed trace.
		w.Header().Set(obs.TraceparentHeader, st.Trace.Context().Traceparent())
	}
	resp := submitResponse{Status: st}
	code := http.StatusAccepted
	switch outcome {
	case service.OutcomeAccepted:
		resp.Outcome = "accepted"
	case service.OutcomeCoalesced:
		resp.Outcome = "coalesced"
		code = http.StatusOK
	case service.OutcomeCached:
		resp.Outcome = "cached"
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

// proxied relays a job read/cancel to the node named in the job ID's
// prefix when that is a known peer. It reports true when it handled the
// request. Requests already carrying the loop-guard header and IDs owned
// locally (or with no recognizable prefix) are handled locally. A dead
// prefix node's requests fall back to its takeover successor — the node
// holding its replicated journal — which serves the adopted job under the
// original ID (locally, when this node is that successor).
func (h *Handler) proxied(w http.ResponseWriter, r *http.Request, id, suffix string) bool {
	if h.cluster == nil || r.Header.Get(cluster.ForwardHeader) != "" {
		return false
	}
	node := service.JobNode(id)
	if node == "" || node == h.cluster.Self() {
		return false
	}
	p, ok := h.cluster.Peer(node)
	if !ok {
		return false // unknown prefix: treat as a local (unknown) job ID
	}
	target := node
	if !p.Alive() {
		target = h.cluster.TakeoverTarget(node)
		if target == "" || target == h.cluster.Self() {
			return false // we are the successor (or alone): answer locally
		}
	}
	code, body, err := h.cluster.ProxyJob(r.Context(), target, r.Method, "/v1/jobs/"+id+suffix,
		r.Header.Get(obs.TraceparentHeader))
	if err != nil {
		writeJSON(w, http.StatusBadGateway,
			errorBody{Error: fmt.Sprintf("node %s unreachable: %v", target, err)})
		return true
	}
	writeRaw(w, code, body)
	return true
}

func (h *Handler) status(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if h.proxied(w, r, id, "") {
		return
	}
	st, err := h.svc.Job(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *Handler) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if h.proxied(w, r, id, "/result") {
		return
	}
	st, res, err := h.svc.Result(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	switch st.State {
	case service.StateDone:
		// The report schema shared with gpsbench -json, byte for byte.
		writeJSON(w, http.StatusOK, res)
	case service.StateFailed:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: st.Error})
	case service.StateCanceled:
		writeJSON(w, http.StatusConflict, errorBody{Error: "job canceled"})
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (h *Handler) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if h.proxied(w, r, id, "") {
		return
	}
	st, err := h.svc.Cancel(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	m := h.svc.Metrics()
	status, code := "ok", http.StatusOK
	if h.svc.Draining() {
		// Load balancers reading the status code stop routing here while
		// in-flight jobs finish; the body stays the full JSON health
		// snapshot so operators can still see identity and progress.
		status, code = "draining", http.StatusServiceUnavailable
	}
	bi := obs.ReadBuildInfo()
	hz := client.Health{
		Status:        status,
		NodeID:        h.svc.NodeID(),
		Role:          "single",
		UptimeSeconds: m.UptimeSeconds,
		Workers:       m.Workers,
		BusyWorkers:   m.BusyWorkers,
		QueueDepth:    m.QueueDepth,
		QueueCapacity: m.QueueCapacity,
	}
	hz.Build.GoVersion = bi.GoVersion
	hz.Build.Revision = bi.Revision
	hz.Build.VCSTime = bi.Time
	hz.Build.Modified = bi.Modified
	if h.cluster != nil {
		hz.Role = "cluster"
		hz.NodeID = h.cluster.Self()
		peers, alive := h.cluster.PeersHealth()
		hz.Peers, hz.PeersAlive, hz.PeersTotal = peers, alive, len(peers)
		stats := h.cluster.Stats()
		hz.Cluster = &stats
		hz.Ring = h.cluster.RingSample(ringSamplePoints)
	}
	writeJSON(w, code, hz)
}

// peerResult serves the content-addressed cache by canonical spec hash:
// the cluster's peer result-fetch path. 404 means "not cached here", which
// callers treat as a miss, not an error.
func (h *Handler) peerResult(w http.ResponseWriter, r *http.Request) {
	res, ok := h.svc.ResultByHash(r.PathValue("hash"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "hash not cached on this node"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	res.Encode(w) //nolint:errcheck // client gone; nothing to do
}

// peerSteal checks one queued job out to the requesting thief node. The
// victim only gives work away while genuinely overloaded (all workers busy
// and a non-empty queue); otherwise 204.
func (h *Handler) peerSteal(w http.ResponseWriter, r *http.Request) {
	thief := r.URL.Query().Get("thief")
	if thief == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "missing thief parameter"})
		return
	}
	m := h.svc.Metrics()
	if bin := (cluster.Bin{Capacity: m.Workers, Busy: m.BusyWorkers, Queued: m.QueueDepth}); !bin.Overloaded() {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	stolen, ok := h.svc.Steal(thief)
	if !ok {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, stolen)
}

// maxCompleteBytes caps a stolen job's completion body. Reports for big
// matrices run to megabytes of rendered tables; 64 MiB is far above any
// real report while still bounding a hostile peer.
const maxCompleteBytes = 64 << 20

// ringSamplePoints is how many synthetic keys healthz routes through the
// ring to show ownership spread (gpsctl cluster renders them).
const ringSamplePoints = 8

// maxJournalBytes caps one replicated journal batch. Specs are tiny; even a
// full-snapshot Reset batch for thousands of pending jobs fits comfortably.
const maxJournalBytes = 8 << 20

// peerJournal ingests one peer's replicated journal records — the receive
// side of the self-healing stream. The records land in this node's replica
// store; they turn into real jobs only if the origin dies and this node is
// its ring successor at that moment.
func (h *Handler) peerJournal(w http.ResponseWriter, r *http.Request) {
	var batch cluster.ReplBatch
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJournalBytes)).Decode(&batch); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad journal batch: " + err.Error()})
		return
	}
	if err := h.cluster.ApplyReplicaBatch(batch); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// peerComplete lands a stolen job's outcome back on this (victim) node.
func (h *Handler) peerComplete(w http.ResponseWriter, r *http.Request) {
	var pay cluster.CompletePayload
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxCompleteBytes)).Decode(&pay); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad completion: " + err.Error()})
		return
	}
	id := r.PathValue("id")
	var err error
	if pay.Declined {
		err = h.svc.DeclineStolen(id)
	} else {
		err = h.svc.CompleteStolen(id, pay.Result, pay.Error)
	}
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.svc.Metrics())
}

// clusterMetrics serves the federated metrics view: this node plus every
// peer's /v1/metrics snapshot. A single-node daemon answers with a
// one-entry list, so gpsctl top works against any deployment.
func (h *Handler) clusterMetrics(w http.ResponseWriter, r *http.Request) {
	if h.cluster == nil {
		m := h.svc.Metrics()
		writeJSON(w, http.StatusOK, client.ClusterMetricsResp{
			Nodes: []client.NodeMetrics{{Node: h.svc.NodeID(), Alive: true, Metrics: &m}},
		})
		return
	}
	writeJSON(w, http.StatusOK, h.cluster.FederatedMetrics(r.Context()))
}
