// Package httpapi exposes the simulation service over a JSON REST API:
//
//	POST   /v1/jobs           submit a job spec; 202 queued, 200 cached or
//	                          coalesced, 400 invalid, 429 queue full
//	                          (with Retry-After), 503 shutting down
//	GET    /v1/jobs/{id}      poll status + progress
//	GET    /v1/jobs/{id}/result  fetch the report of a done job; 202 while
//	                          queued/running, 409 canceled, 500 failed
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	GET    /v1/healthz        liveness: status (ok | draining), uptime,
//	                          build info, worker/queue snapshot; 503 while
//	                          draining
//	GET    /v1/metrics        queue depth, worker utilization, cache
//	                          hit/miss, wall-clock accounting (JSON)
//	GET    /metrics           the same counters plus latency histograms in
//	                          Prometheus text exposition format (only wired
//	                          when a registry is configured)
//
// The result endpoint emits the same report schema as gpsbench -json
// (internal/report), so CLI and service output are byte-compatible.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"

	"gps/internal/obs"
	"gps/internal/service"
)

// Handler serves the REST API for one service.Server.
type Handler struct {
	svc     *service.Server
	mux     *http.ServeMux
	handler http.Handler // mux, possibly wrapped in access logging
}

// Option customizes a Handler.
type Option func(*options)

type options struct {
	logger   *slog.Logger
	registry *obs.Registry
}

// WithLogger wraps every request in access logging (method, path, status,
// bytes, latency) on l at Info level.
func WithLogger(l *slog.Logger) Option {
	return func(o *options) { o.logger = l }
}

// WithRegistry serves reg in Prometheus text format at GET /metrics and
// records per-request latency/status counters into it.
func WithRegistry(reg *obs.Registry) Option {
	return func(o *options) { o.registry = reg }
}

// New wires the routes.
func New(svc *service.Server, opts ...Option) *Handler {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	h := &Handler{svc: svc, mux: http.NewServeMux()}
	h.mux.HandleFunc("POST /v1/jobs", h.submit)
	h.mux.HandleFunc("GET /v1/jobs/{id}", h.status)
	h.mux.HandleFunc("GET /v1/jobs/{id}/result", h.result)
	h.mux.HandleFunc("DELETE /v1/jobs/{id}", h.cancel)
	h.mux.HandleFunc("GET /v1/healthz", h.healthz)
	h.mux.HandleFunc("GET /v1/metrics", h.metrics)
	if o.registry != nil {
		h.mux.Handle("GET /metrics", o.registry.Handler())
	}
	h.handler = h.mux
	if o.logger != nil || o.registry != nil {
		h.handler = obs.AccessLog(o.logger, o.registry, h.mux)
	}
	return h
}

func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.handler.ServeHTTP(w, r) }

// writeJSON emits a JSON body with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// maxSpecBytes caps the request body on submit. Specs are small (a matrix of
// a few dozen cells is under a kilobyte); anything bigger is a client bug or
// an attempt to balloon the daemon's memory.
const maxSpecBytes = 1 << 20

// submitResponse decorates the job snapshot with what Submit did, so
// clients can tell a fresh execution from a coalesced or cached one.
type submitResponse struct {
	service.Status
	Outcome string `json:"outcome"` // accepted | coalesced | cached
}

func (h *Handler) submit(w http.ResponseWriter, r *http.Request) {
	var spec service.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorBody{Error: fmt.Sprintf("spec exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad spec: " + err.Error()})
		return
	}
	st, outcome, err := h.svc.Submit(spec)
	switch {
	case errors.Is(err, service.ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(h.svc.RetryAfterSeconds()))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, service.ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case errors.Is(err, service.ErrInvalidSpec):
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	case err != nil:
		// Admission failed for a non-client reason (e.g. the journal append
		// could not be committed): the daemon's fault, not the spec's.
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	resp := submitResponse{Status: st}
	code := http.StatusAccepted
	switch outcome {
	case service.OutcomeAccepted:
		resp.Outcome = "accepted"
	case service.OutcomeCoalesced:
		resp.Outcome = "coalesced"
		code = http.StatusOK
	case service.OutcomeCached:
		resp.Outcome = "cached"
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

func (h *Handler) status(w http.ResponseWriter, r *http.Request) {
	st, err := h.svc.Job(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *Handler) result(w http.ResponseWriter, r *http.Request) {
	st, res, err := h.svc.Result(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	switch st.State {
	case service.StateDone:
		// The report schema shared with gpsbench -json, byte for byte.
		writeJSON(w, http.StatusOK, res)
	case service.StateFailed:
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: st.Error})
	case service.StateCanceled:
		writeJSON(w, http.StatusConflict, errorBody{Error: "job canceled"})
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (h *Handler) cancel(w http.ResponseWriter, r *http.Request) {
	st, err := h.svc.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	m := h.svc.Metrics()
	status, code := "ok", http.StatusOK
	if h.svc.Draining() {
		// Load balancers reading the status code stop routing here while
		// in-flight jobs finish.
		status, code = "draining", http.StatusServiceUnavailable
	}
	bi := obs.ReadBuildInfo()
	writeJSON(w, code, map[string]any{
		"status":         status,
		"uptime_seconds": m.UptimeSeconds,
		"build": map[string]any{
			"go_version": bi.GoVersion,
			"revision":   bi.Revision,
			"vcs_time":   bi.Time,
			"modified":   bi.Modified,
		},
		"workers":        m.Workers,
		"busy_workers":   m.BusyWorkers,
		"queue_depth":    m.QueueDepth,
		"queue_capacity": m.QueueCapacity,
	})
}

func (h *Handler) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.svc.Metrics())
}
