package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	apiclient "gps/internal/client"
	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/service"
)

// syncBuffer serializes writes from server goroutines against test reads:
// the access log fires after the handler returns, which can race the
// client's view of the response.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// obsServer wires an instant executor behind a handler carrying a registry
// and a JSON access log.
func obsServer(t *testing.T) (*service.Server, *httptest.Server, *obs.Registry, *syncBuffer) {
	t.Helper()
	reg := obs.NewRegistry()
	logBuf := &syncBuffer{}
	logger := obs.NewLogger(logBuf, slog.LevelInfo, true)
	svc := service.New(service.Config{
		Workers: 1, QueueDepth: 4, Registry: reg,
		Execute: func(ctx context.Context, spec service.Spec) (*report.Report, error) {
			return &report.Report{TotalSeconds: 0.001}, nil
		},
	})
	ts := httptest.NewServer(New(svc, WithLogger(logger), WithRegistry(reg)))
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background()) //nolint:errcheck
	})
	return svc, ts, reg, logBuf
}

// TestPrometheusEndpoint: GET /metrics serves the text exposition with the
// daemon's families, while the JSON /v1/metrics stays intact next to it.
func TestPrometheusEndpoint(t *testing.T) {
	_, ts, _, _ := obsServer(t)
	client := ts.Client()

	c := apiclient.New(ts.URL, apiclient.WithHTTPClient(client))
	sub, err := c.Submit(context.Background(), service.Spec{Type: "sensitivity", Sensitivity: "tlb"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitDone(t, c, sub.ID)

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	expo := string(body)
	for _, want := range []string{
		"# TYPE gpsd_jobs_total counter",
		`gpsd_jobs_total{event="submitted"} 1`,
		"# TYPE gpsd_queue_depth gauge",
		"gpsd_job_exec_seconds_bucket",
		"http_requests_total{",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("/metrics missing %q:\n%s", want, expo)
		}
	}

	// The JSON metrics endpoint keeps its schema.
	var m service.Metrics
	resp = doJSON(t, client, "GET", ts.URL+"/v1/metrics", "", &m)
	if resp.StatusCode != http.StatusOK || m.JobsSubmitted != 1 || m.JobsDone != 1 {
		t.Errorf("/v1/metrics: status %d, submitted %d, done %d", resp.StatusCode, m.JobsSubmitted, m.JobsDone)
	}
}

// TestHealthzReportsBuildAndDrain: /v1/healthz carries uptime, build info
// and the worker/queue snapshot while healthy, and flips to a 503
// "draining" once shutdown begins.
func TestHealthzReportsBuildAndDrain(t *testing.T) {
	svc, ts, _, _ := obsServer(t)
	client := ts.Client()

	var hz struct {
		Status        string         `json:"status"`
		UptimeSeconds float64        `json:"uptime_seconds"`
		Build         map[string]any `json:"build"`
		Workers       int            `json:"workers"`
		QueueCapacity int            `json:"queue_capacity"`
	}
	resp := doJSON(t, client, "GET", ts.URL+"/v1/healthz", "", &hz)
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" {
		t.Fatalf("healthz: status %d %q, want 200 ok", resp.StatusCode, hz.Status)
	}
	if hz.Build["go_version"] == "" || hz.Workers != 1 || hz.QueueCapacity != 4 {
		t.Errorf("healthz body incomplete: %+v", hz)
	}

	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp = doJSON(t, client, "GET", ts.URL+"/v1/healthz", "", &hz)
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Errorf("healthz during drain: status %d %q, want 503 draining", resp.StatusCode, hz.Status)
	}
}

// TestHTTPAccessLog: requests through the handler leave structured access
// records with method, path and status.
func TestHTTPAccessLog(t *testing.T) {
	_, ts, _, logBuf := obsServer(t)
	client := ts.Client()

	resp, err := client.Get(ts.URL + "/v1/jobs/j-999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The record is written just after the handler returns; give it a beat.
	deadline := time.Now().Add(5 * time.Second)
	for {
		found := false
		for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
			var rec map[string]any
			if json.Unmarshal([]byte(line), &rec) != nil {
				continue
			}
			if rec["msg"] == "http request" && rec["path"] == "/v1/jobs/j-999999" {
				found = true
				if rec["method"] != "GET" || rec["status"] != float64(http.StatusNotFound) {
					t.Errorf("access record = %v", rec)
				}
			}
		}
		if found {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no access-log record for the request:\n%s", logBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
