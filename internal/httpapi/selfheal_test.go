package httpapi

import (
	"bytes"
	"context"
	"testing"
	"time"

	"gps/internal/cluster"
	"gps/internal/report"
	"gps/internal/service"
)

// specsOwnedBy returns n distinct canonical specs whose ring owner is the
// given node (per the submitting node's current liveness view).
func specsOwnedBy(t *testing.T, n *clusterNode, owner string, count int) []service.Spec {
	t.Helper()
	var specs []service.Spec
	for seed := int64(1); seed < 65536 && len(specs) < count; seed++ {
		spec := service.Spec{Type: "figure", Figure: 3, Seed: seed}
		canon, err := spec.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		if n.clu.Owner(canon.Hash()) == owner {
			specs = append(specs, spec)
		}
	}
	if len(specs) < count {
		t.Fatalf("found only %d/%d seeds owned by %s", len(specs), count, owner)
	}
	return specs
}

// TestClusterTakeoverPermanentKill is the permanent-kill chaos scenario:
// three nodes, the owner of a batch of jobs is SIGKILLed mid-queue (one job
// running, the rest queued) and never restarted. Every accepted job must
// reach done on the ring successor under its ORIGINAL ID, results must read
// byte-identical through both survivors, and the engine-run counters must
// prove each job executed exactly once.
func TestClusterTakeoverPermanentKill(t *testing.T) {
	release := make(chan struct{})
	var released bool
	defer func() {
		if !released {
			close(release)
		}
	}()
	nodes := newTestCluster(t, []string{"a", "b", "c"},
		func(id string, n *clusterNode) service.ExecuteFunc {
			if id != "b" {
				return nil // fast deterministic default
			}
			// b's engine parks until released, wedging its queue so the kill
			// happens with work genuinely in flight.
			return func(ctx context.Context, spec service.Spec) (*report.Report, error) {
				n.exec.Add(1)
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				r := &report.Report{ParallelWorkers: 1}
				r.AddTable("spec", "should never finish on b")
				return r, nil
			}
		})

	const jobs = 3
	specs := specsOwnedBy(t, nodes["a"], "b", jobs)
	ids := make([]string, 0, jobs)
	for _, spec := range specs {
		sub := submitVia(t, nodes["a"], spec)
		if service.JobNode(sub.ID) != "b" {
			t.Fatalf("job %s not owned by b", sub.ID)
		}
		ids = append(ids, sub.ID)
	}
	// Give b's worker a moment to pick up (and wedge on) the first job so
	// the kill catches a mix of running and queued work. The submit records
	// were replicated synchronously inside each Submit, so nothing below
	// depends on this timing.
	time.Sleep(50 * time.Millisecond)

	killNode(t, nodes, "b")

	succ := nodes["a"].clu.TakeoverTarget("b")
	if succ == "" || succ == "b" {
		t.Fatalf("no takeover target for b: %q", succ)
	}
	if got := nodes["c"].clu.TakeoverTarget("b"); got != succ {
		t.Fatalf("survivors disagree on b's successor: a says %s, c says %s", succ, got)
	}
	adopter, other := nodes[succ], nodes["a"]
	if succ == "a" {
		other = nodes["c"]
	}

	// Every job completes under its original b-prefixed ID, visible through
	// both survivors, marked as adopted from the dead node.
	for _, id := range ids {
		for _, n := range []*clusterNode{adopter, other} {
			st, err := n.c.WaitTerminal(context.Background(), id, 5*time.Millisecond)
			if err != nil || st.State != service.StateDone {
				t.Fatalf("job %s via %s: state %s err %v", id, n.id, st.State, err)
			}
			if st.AdoptedFrom != "b" {
				t.Fatalf("job %s via %s: adopted_from %q, want b", id, n.id, st.AdoptedFrom)
			}
		}
		codeA, bodyA := rawGet(t, adopter, "/v1/jobs/"+id+"/result")
		codeB, bodyB := rawGet(t, other, "/v1/jobs/"+id+"/result")
		if codeA != 200 || codeB != 200 {
			t.Fatalf("job %s results: %d via %s, %d via %s", id, codeA, adopter.id, codeB, other.id)
		}
		if !bytes.Equal(bodyA, bodyB) {
			t.Fatalf("job %s result bytes differ between survivors", id)
		}
	}

	// Exactly-once execution: the successor ran all of them, the other
	// survivor ran none, and b's wedged attempt never completed.
	if got := adopter.exec.Load(); got != jobs {
		t.Fatalf("successor %s executed %d jobs, want %d", adopter.id, got, jobs)
	}
	if got := other.exec.Load(); got != 0 {
		t.Fatalf("survivor %s executed %d jobs, want 0", other.id, got)
	}

	// Takeover counters surface on the successor only.
	if st := adopter.clu.Stats(); st.TakeoverJobs != jobs || st.Takeovers == 0 {
		t.Fatalf("successor stats: takeovers=%d takeover_jobs=%d, want >0/%d",
			st.Takeovers, st.TakeoverJobs, jobs)
	}
	if st := other.clu.Stats(); st.TakeoverJobs != 0 {
		t.Fatalf("survivor %s reports %d takeover jobs, want 0", other.id, st.TakeoverJobs)
	}

	// Cross-node single-flight survives the takeover: resubmitting one of
	// the dead node's specs through the other survivor routes to the
	// successor and answers from cache — no re-execution anywhere.
	sub := submitVia(t, other, specs[0])
	if service.JobNode(sub.ID) != succ {
		t.Fatalf("post-takeover resubmit routed to %s, want %s", service.JobNode(sub.ID), succ)
	}
	st, err := other.c.WaitTerminal(context.Background(), sub.ID, 5*time.Millisecond)
	if err != nil || st.State != service.StateDone {
		t.Fatalf("post-takeover resubmit: %s %v", st.State, err)
	}
	if got := adopter.exec.Load(); got != jobs {
		t.Fatalf("resubmit re-executed: successor count %d, want %d", got, jobs)
	}
}

// TestClusterResurrectionDuringTakeover covers the return of the dead: a
// node is killed with jobs in flight, its successor adopts and finishes
// them, and then the node comes back with the same journal. The replayed
// jobs must NOT re-execute locally — the resurrection handshake delegates
// them to the successor and lands its results.
func TestClusterResurrectionDuringTakeover(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	nodes := newTestCluster(t, []string{"a", "b", "c"},
		func(id string, n *clusterNode) service.ExecuteFunc {
			if id != "b" {
				return nil
			}
			return func(ctx context.Context, spec service.Spec) (*report.Report, error) {
				n.exec.Add(1)
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return &report.Report{ParallelWorkers: 1}, nil
			}
		})

	specs := specsOwnedBy(t, nodes["a"], "b", 2)
	ids := make([]string, 0, len(specs))
	for _, spec := range specs {
		ids = append(ids, submitVia(t, nodes["a"], spec).ID)
	}
	time.Sleep(50 * time.Millisecond) // let b wedge on the first job

	killNode(t, nodes, "b")
	succ := nodes["a"].clu.TakeoverTarget("b")
	for _, id := range ids {
		st, err := nodes[succ].c.WaitTerminal(context.Background(), id, 5*time.Millisecond)
		if err != nil || st.State != service.StateDone {
			t.Fatalf("adopted job %s: %s %v", id, st.State, err)
		}
	}

	// Resurrect b from its own journal. The pre-kill process still exists
	// (its worker is wedged); OpenJournal's compacting rewrite renames the
	// file away, so any late writes from the zombie land on an unlinked
	// inode — exactly the isolation a real restart gets from a new PID.
	j2, err := service.OpenJournal(nodes["b"].jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	clu2 := cluster.New(cluster.Config{Self: "b", ProbeInterval: 100 * time.Millisecond, StealInterval: -1})
	clu2.AddPeer("a", nodes["a"].ts.URL)
	clu2.AddPeer("c", nodes["c"].ts.URL)
	clu2.ProbeOnce(context.Background()) // liveness view before reconcile, as gpsd does
	var reexec int64
	svc2 := service.New(service.Config{
		NodeID:     "b",
		Workers:    1,
		QueueDepth: 8,
		Execute: func(ctx context.Context, spec service.Spec) (*report.Report, error) {
			reexec++
			return &report.Report{ParallelWorkers: 1}, nil
		},
		Journal:      j2,
		Reconcile:    clu2.Reconcile,
		RemoteResult: clu2.FetchPeerResult,
	})
	clu2.Bind(svc2)
	j2.SetSink(clu2)
	clu2.EnableReplication()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	clu2.Start(ctx) // drains the parked delegations into watchers
	defer func() {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		svc2.Shutdown(sctx)
		scancel()
	}()

	// Every replayed job must land the successor's outcome without running
	// the engine here.
	for _, id := range ids {
		wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
		st, rep, err := svc2.WaitResult(wctx, id)
		wcancel()
		if err != nil || st.State != service.StateDone || rep == nil {
			t.Fatalf("resurrected %s: state %s rep=%v err %v", id, st.State, rep != nil, err)
		}
		if st.StolenBy != succ {
			t.Fatalf("resurrected %s: stolen_by %q, want delegation to %s", id, st.StolenBy, succ)
		}
	}
	if reexec != 0 {
		t.Fatalf("resurrected node re-executed %d delegated jobs, want 0", reexec)
	}
}
