package httpapi

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gps/internal/client"
	"gps/internal/obs"
	"gps/internal/report"
	"gps/internal/service"
)

// withTraceDirs returns a newTestCluster config option giving every node its
// own trace directory under root, plus a lookup from node id to that
// directory.
func withTraceDirs(t *testing.T) (func(*service.Config), func(id string) string) {
	t.Helper()
	root := t.TempDir()
	dirOf := func(id string) string { return filepath.Join(root, id) }
	opt := func(cfg *service.Config) {
		d := dirOf(cfg.NodeID)
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		cfg.TraceDir = d
	}
	return opt, dirOf
}

// collectTraces reads every *.trace.json under each node's trace directory,
// keyed "<node>/<file>" so same-named files from different nodes never
// collide.
func collectTraces(t *testing.T, dirOf func(string) string, ids ...string) map[string][]byte {
	t.Helper()
	files := map[string][]byte{}
	for _, id := range ids {
		entries, err := os.ReadDir(dirOf(id))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".trace.json") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dirOf(id), e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[id+"/"+e.Name()] = data
		}
	}
	return files
}

// waitClusterTrace polls the per-node trace directories until the files
// validate as a cluster and the trace with the wanted id satisfies ok, or
// fails after a deadline. Polling absorbs the tracer's asynchronous final
// flush: a job is terminal a beat before its file is complete on disk.
func waitClusterTrace(t *testing.T, dirOf func(string) string, ids []string,
	traceID string, ok func(obs.ClusterTrace) bool) (*obs.ClusterSummary, obs.ClusterTrace) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var lastErr error
	for {
		files := collectTraces(t, dirOf, ids...)
		sum, err := obs.ValidateClusterTraces(files)
		lastErr = err
		if err == nil {
			for _, ct := range sum.Traces {
				if ct.TraceID == traceID && ok(ct) {
					return sum, ct
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never satisfied condition (last validate err: %v)", traceID, lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterTraceForwardedAndStolenJob is the tentpole acceptance path for
// distributed tracing: a job submitted through a non-owner node is forwarded
// to its owner, stolen by a third node while the owner's worker is wedged,
// and executed there. The per-node trace files must join into ONE connected
// trace — a single trace_id with every parent_span_id resolving across
// files, spanning both the owner and the thief.
func TestClusterTraceForwardedAndStolenJob(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	traceOpt, dirOf := withTraceDirs(t)
	nodes := newTestCluster(t, []string{"a", "b", "c"},
		func(id string, n *clusterNode) service.ExecuteFunc {
			if id != "b" {
				return nil // forwarder and thief execute instantly
			}
			return func(ctx context.Context, spec service.Spec) (*report.Report, error) {
				n.exec.Add(1)
				started <- struct{}{}
				select {
				case <-release:
					return &report.Report{ParallelWorkers: 1}, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		}, traceOpt)

	// Two specs owned by b, both submitted through a (so each crosses the
	// forward hop): the first wedges b's only worker, the second queues and
	// becomes steal bait.
	specs := specsOwnedBy(t, nodes["a"], "b", 2)
	blocker := submitVia(t, nodes["a"], specs[0])
	<-started
	bait := submitVia(t, nodes["a"], specs[1])
	if service.JobNode(bait.ID) != "b" {
		t.Fatalf("bait job %s not owned by b", bait.ID)
	}

	// c's probe sees b overloaded (1/1 busy, 1 queued) and steals the bait.
	nodes["c"].clu.ProbeOnce(context.Background())
	if !nodes["c"].clu.StealOnce(context.Background()) {
		t.Fatal("StealOnce declined with an overloaded victim")
	}
	st, err := nodes["a"].c.WaitTerminal(context.Background(), bait.ID, 5*time.Millisecond)
	if err != nil || st.State != service.StateDone {
		t.Fatalf("stolen job: state %s err %v", st.State, err)
	}
	if st.StolenBy != "c" {
		t.Fatalf("stolen_by = %q, want c", st.StolenBy)
	}
	if st.Trace == nil || st.Trace.TraceID == "" {
		t.Fatalf("terminal status carries no trace identity: %+v", st)
	}

	// Unwedge b so the blocker finishes and its trace file closes cleanly.
	close(release)
	if st2, err := nodes["a"].c.WaitTerminal(context.Background(), blocker.ID, 5*time.Millisecond); err != nil || st2.State != service.StateDone {
		t.Fatalf("blocker job: state %s err %v", st2.State, err)
	}

	// The bait's trace must span the victim (handoff span for the stolen
	// job) and the thief (the execution), all under one trace_id with valid
	// cross-file parent links — ValidateClusterTraces errors on any dangling
	// parent_span_id, so success here IS the connectivity proof.
	_, ct := waitClusterTrace(t, dirOf, []string{"a", "b", "c"}, st.Trace.TraceID,
		func(ct obs.ClusterTrace) bool { return ct.CrossNode() && ct.Roots >= 1 })
	want := []string{"gpsd-b", "gpsd-c"} // trace process names follow gpsd-<node>
	if len(ct.Nodes) != len(want) || ct.Nodes[0] != want[0] || ct.Nodes[1] != want[1] {
		t.Fatalf("trace nodes = %v, want %v", ct.Nodes, want)
	}
	if len(ct.Files) < 2 {
		t.Fatalf("trace files = %v, want spans from 2+ files", ct.Files)
	}
}

// TestClusterTraceAdoptedJobKeepsIdentity covers the crash path: the owner
// of queued jobs is SIGKILLed, the ring successor adopts and executes them,
// and every adopted job must retain the trace identity minted at the
// original submit — the successor's trace file carries the original
// trace_id and validates as one connected trace.
func TestClusterTraceAdoptedJobKeepsIdentity(t *testing.T) {
	release := make(chan struct{})
	var released bool
	defer func() {
		if !released {
			close(release)
		}
	}()
	traceOpt, dirOf := withTraceDirs(t)
	nodes := newTestCluster(t, []string{"a", "b", "c"},
		func(id string, n *clusterNode) service.ExecuteFunc {
			if id != "b" {
				return nil
			}
			return func(ctx context.Context, spec service.Spec) (*report.Report, error) {
				n.exec.Add(1)
				select {
				case <-release:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				return &report.Report{ParallelWorkers: 1}, nil
			}
		}, traceOpt)

	specs := specsOwnedBy(t, nodes["a"], "b", 2)
	type traced struct{ id, traceID string }
	jobs := make([]traced, 0, len(specs))
	for _, spec := range specs {
		sub := submitVia(t, nodes["a"], spec)
		// The trace identity is minted at submit on the owner; capture it
		// before the kill so the post-adoption check is against the original.
		st, err := nodes["b"].c.Status(context.Background(), sub.ID)
		if err != nil || st.Trace == nil || st.Trace.TraceID == "" {
			t.Fatalf("pre-kill status of %s: trace missing (err %v)", sub.ID, err)
		}
		jobs = append(jobs, traced{id: sub.ID, traceID: st.Trace.TraceID})
	}
	time.Sleep(50 * time.Millisecond) // let b wedge on the first job

	killNode(t, nodes, "b")
	succ := nodes["a"].clu.TakeoverTarget("b")
	if succ == "" || succ == "b" {
		t.Fatalf("no takeover target for b: %q", succ)
	}

	survivors := []string{"a", "c"}
	for _, j := range jobs {
		st, err := nodes[succ].c.WaitTerminal(context.Background(), j.id, 5*time.Millisecond)
		if err != nil || st.State != service.StateDone {
			t.Fatalf("adopted job %s: state %s err %v", j.id, st.State, err)
		}
		if st.AdoptedFrom != "b" {
			t.Fatalf("job %s adopted_from %q, want b", j.id, st.AdoptedFrom)
		}
		if st.Trace == nil || st.Trace.TraceID != j.traceID {
			t.Fatalf("job %s lost its trace identity across adoption: %+v, want trace_id %s",
				j.id, st.Trace, j.traceID)
		}
		// Only the survivors' directories are collected: the zombie b still
		// holds a half-written file for its wedged job, which is exactly
		// what a SIGKILL leaves behind and not part of the adopted trace.
		_, ct := waitClusterTrace(t, dirOf, survivors, j.traceID,
			func(ct obs.ClusterTrace) bool { return ct.Roots >= 1 && ct.Spans >= 1 })
		if len(ct.Nodes) != 1 || ct.Nodes[0] != "gpsd-"+succ {
			t.Fatalf("adopted trace %s spans nodes %v, want [gpsd-%s]", j.traceID, ct.Nodes, succ)
		}
	}
}

// TestClusterMetricsFederation checks the operator endpoint: GET
// /v1/cluster/metrics on any node fans out to the whole cluster and merges
// one entry per node, and a dead peer degrades to alive=false instead of
// failing the call.
func TestClusterMetricsFederation(t *testing.T) {
	nodes := newTestCluster(t, []string{"a", "b", "c"},
		func(string, *clusterNode) service.ExecuteFunc { return nil })

	spec := specOwnedBy(t, nodes["a"], "b")
	sub := submitVia(t, nodes["a"], spec)
	if st, err := nodes["a"].c.WaitTerminal(context.Background(), sub.ID, 5*time.Millisecond); err != nil || st.State != service.StateDone {
		t.Fatalf("job: %s %v", st.State, err)
	}

	fed, err := nodes["a"].c.ClusterMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byNode := map[string]client.NodeMetrics{}
	for _, nm := range fed.Nodes {
		byNode[nm.Node] = nm
	}
	if len(byNode) != 3 {
		t.Fatalf("federated %d nodes, want 3: %+v", len(byNode), fed.Nodes)
	}
	for _, id := range []string{"a", "b", "c"} {
		nm := byNode[id]
		if !nm.Alive || nm.Metrics == nil {
			t.Fatalf("node %s: alive=%v metrics=%v, want live with metrics", id, nm.Alive, nm.Metrics != nil)
		}
	}
	if got := byNode["b"].Metrics.JobsDone; got != 1 {
		t.Fatalf("owner jobs_done = %d, want 1", got)
	}
	if byNode["b"].Metrics.JobE2E == nil || byNode["b"].Metrics.JobE2E.Count != 1 {
		t.Fatalf("owner e2e histogram = %+v, want count 1", byNode["b"].Metrics.JobE2E)
	}

	// Kill a peer: the fan-out degrades, never errors.
	killNode(t, nodes, "c")
	fed, err = nodes["a"].c.ClusterMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byNode = map[string]client.NodeMetrics{}
	for _, nm := range fed.Nodes {
		byNode[nm.Node] = nm
	}
	if nm := byNode["c"]; nm.Alive || nm.Metrics != nil {
		t.Fatalf("dead peer c reported %+v, want alive=false without metrics", nm)
	}
	if !byNode["a"].Alive || !byNode["b"].Alive {
		t.Fatal("live nodes degraded alongside the dead peer")
	}

	// The single-node fallback answers the same shape without a cluster.
	svc, ts := instantServer(t, service.Config{Workers: 1, QueueDepth: 4, NodeID: "solo"})
	defer ts.Close()
	_ = svc
	solo, err := client.New(ts.URL).ClusterMetrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(solo.Nodes) != 1 || solo.Nodes[0].Node != "solo" || !solo.Nodes[0].Alive || solo.Nodes[0].Metrics == nil {
		t.Fatalf("single-node fallback = %+v, want one live entry", solo.Nodes)
	}
}
