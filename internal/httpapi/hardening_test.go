package httpapi

import (
	"context"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"gps/internal/report"
	"gps/internal/service"
)

// instantServer runs jobs through a no-op executor.
func instantServer(t *testing.T, cfg service.Config) (*service.Server, *httptest.Server) {
	t.Helper()
	if cfg.Execute == nil {
		cfg.Execute = func(ctx context.Context, spec service.Spec) (*report.Report, error) {
			return &report.Report{}, nil
		}
	}
	svc := service.New(cfg)
	ts := httptest.NewServer(New(svc))
	t.Cleanup(func() {
		ts.Close()
		svc.Shutdown(context.Background())
	})
	return svc, ts
}

// TestZeroCellMatrixRejected400: a matrix spec with no cells used to reach
// the runner and die on the empty-slice aggregation (stats.GeoMean); it must
// be refused at admission with a 400 and a typed validation error.
func TestZeroCellMatrixRejected400(t *testing.T) {
	svc, ts := instantServer(t, service.Config{Workers: 1, QueueDepth: 4})
	client := ts.Client()

	for _, body := range []string{
		`{"type":"matrix"}`,
		`{"type":"matrix","cells":[]}`,
	} {
		var eb struct {
			Error string `json:"error"`
		}
		resp := doJSON(t, client, "POST", ts.URL+"/v1/jobs", body, &eb)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: status %d, want 400", body, resp.StatusCode)
		}
		if !strings.Contains(eb.Error, "at least one cell") {
			t.Errorf("submit %s: error %q, want the cell-count complaint", body, eb.Error)
		}
	}
	if m := svc.Metrics(); m.JobsSubmitted != 0 {
		t.Errorf("JobsSubmitted = %d, want 0 (invalid specs must not queue)", m.JobsSubmitted)
	}
}

// TestOversizedSpecRejected413: request bodies beyond the spec size cap are
// cut off and answered with 413, not buffered into memory.
func TestOversizedSpecRejected413(t *testing.T) {
	_, ts := instantServer(t, service.Config{Workers: 1, QueueDepth: 4})
	client := ts.Client()

	// A syntactically valid spec padded past 1 MiB with a giant cell list.
	var sb strings.Builder
	sb.WriteString(`{"type":"matrix","cells":[`)
	cell := `{"app":"jacobi","paradigm":"gps","gpus":2,"fabric":"pcie4"},`
	for sb.Len() < 2<<20 {
		sb.WriteString(cell)
	}
	sb.WriteString(`{"app":"jacobi","paradigm":"gps","gpus":2,"fabric":"pcie4"}]}`)

	var eb struct {
		Error string `json:"error"`
	}
	resp := doJSON(t, client, "POST", ts.URL+"/v1/jobs", sb.String(), &eb)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit: status %d, want 413", resp.StatusCode)
	}
	if !strings.Contains(eb.Error, "exceeds") {
		t.Errorf("413 body = %q, want the size-limit message", eb.Error)
	}
}

// TestJournalFailureIs500: an admission refusal that is the daemon's fault
// (the journal cannot commit) maps to 500, not 400 — the spec is fine and a
// client retry against a healed daemon should succeed.
func TestJournalFailureIs500(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gpsd.journal")
	j, err := service.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := instantServer(t, service.Config{Workers: 1, QueueDepth: 4, Journal: j})
	client := ts.Client()

	j.Close() // journal now refuses appends
	resp := doJSON(t, client, "POST", ts.URL+"/v1/jobs", `{"type":"table","table":1}`, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("submit with dead journal: status %d, want 500", resp.StatusCode)
	}
}
