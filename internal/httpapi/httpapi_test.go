package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gps/internal/client"
	"gps/internal/report"
	"gps/internal/service"
)

// doJSON issues one raw request and decodes the JSON body into out (if
// non-nil). The typed API surface is covered through internal/client; this
// helper stays for protocol-level assertions (headers, malformed bodies,
// exact encodings) the typed client deliberately hides.
func doJSON(t *testing.T, client *http.Client, method, url string, body string, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp
}

// waitDone blocks until the job is terminal and asserts it finished done.
func waitDone(t *testing.T, c *client.Client, id string) service.Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.WaitTerminal(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

// apiStatus unwraps the typed error's status code (0 when err is nil or
// untyped).
func apiStatus(err error) int {
	var ae *client.APIError
	if errors.As(err, &ae) {
		return ae.StatusCode
	}
	return 0
}

// TestEndToEndSubmitPollResult drives the full API against real simulations
// through the typed client: N concurrent submissions on a bounded worker
// pool, then a repeated identical spec served from the content-addressed
// cache with no second execution.
func TestEndToEndSubmitPollResult(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	svc := service.New(service.Config{Workers: 2, QueueDepth: 16})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(New(svc))
	defer ts.Close()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))

	// One tiny real-simulation matrix spec plus instant static specs,
	// submitted concurrently to exercise the pool under -race.
	specs := []service.Spec{
		{Type: "matrix", Iterations: 1, Cells: []service.CellSpec{
			{App: "jacobi", Paradigm: "GPS", GPUs: 2, Fabric: "pcie4"},
			{App: "jacobi", Paradigm: "memcpy", GPUs: 2, Fabric: "pcie4"},
		}},
		{Type: "table", Table: 1},
		{Type: "table", Table: 2},
		{Type: "figure", Figure: 3},
	}
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec service.Spec) {
			defer wg.Done()
			sub, err := c.Submit(context.Background(), spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = sub.ID
		}(i, spec)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for _, id := range ids {
		if st := waitDone(t, c, id); st.State != service.StateDone {
			t.Fatalf("job %s finished %s: %s", id, st.State, st.Error)
		}
	}

	// The matrix job's progress counter saw both cells.
	matrixStatus, err := c.Status(context.Background(), ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if matrixStatus.CellsDone != 2 {
		t.Errorf("matrix cells_done = %d, want 2", matrixStatus.CellsDone)
	}

	// Its result is the shared report schema with one rendered table.
	rep, err := c.Result(context.Background(), ids[0])
	if err != nil || rep == nil {
		t.Fatalf("result: %v (report %v)", err, rep)
	}
	if len(rep.Tables) != 1 || !strings.Contains(rep.Tables[0].Text, "jacobi/GPS/2gpu/pcie4") {
		t.Fatalf("result tables missing matrix rows: %+v", rep.Tables)
	}
	if rep.Cache.TraceBuilds == 0 {
		t.Error("result cache stats empty, want runner counters")
	}

	// Resubmitting the identical spec (differently spelled, raw JSON so the
	// server does the canonicalization) is a cache hit: no execution, job
	// born done, counter incremented.
	before := svc.Metrics()
	var cached client.SubmitResult
	resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/jobs",
		`{"type":"MATRIX","iterations":1,"cells":[
		   {"app":"jacobi","paradigm":"gps","gpus":2,"fabric":"PCIE4"},
		   {"app":"jacobi","paradigm":"MEMCPY","gpus":2,"fabric":"pcie4"}]}`, &cached)
	if resp.StatusCode != http.StatusOK || cached.Outcome != "cached" || cached.State != service.StateDone {
		t.Fatalf("repeat submit: status %d outcome %s state %s, want 200/cached/done",
			resp.StatusCode, cached.Outcome, cached.State)
	}
	after := svc.Metrics()
	if after.ResultCacheHits != before.ResultCacheHits+1 {
		t.Errorf("cache hits %d -> %d, want +1", before.ResultCacheHits, after.ResultCacheHits)
	}
	if after.ExecSecondsTotal != before.ExecSecondsTotal && after.JobsSubmitted != before.JobsSubmitted+1 {
		t.Errorf("cached submit must not execute")
	}

	// Metrics and health endpoints respond.
	var m service.Metrics
	if resp := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/metrics", "", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if m.QueueCapacity != 16 || m.Workers != 2 {
		t.Errorf("metrics queue/workers = %d/%d, want 16/2", m.QueueCapacity, m.Workers)
	}
	hz, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if hz.Status != "ok" || hz.Role != "single" || hz.NodeID != "" {
		t.Errorf("healthz = %+v, want ok/single with no node identity", hz)
	}
}

// blockedServer builds a server whose executor parks jobs until release is
// closed (or their context is canceled).
func blockedServer(t *testing.T, workers, depth int) (*service.Server, *httptest.Server, chan struct{}, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	svc := service.New(service.Config{
		Workers:    workers,
		QueueDepth: depth,
		Execute: func(ctx context.Context, spec service.Spec) (*report.Report, error) {
			started <- struct{}{}
			select {
			case <-release:
				return &report.Report{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ts := httptest.NewServer(New(svc))
	return svc, ts, release, started
}

func TestQueueSaturationReturns429(t *testing.T) {
	svc, ts, release, started := blockedServer(t, 1, 1)
	defer func() {
		close(release)
		ts.Close()
		svc.Shutdown(context.Background())
	}()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	if _, err := c.Submit(ctx, service.Spec{Type: "sensitivity", Sensitivity: "tlb"}); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-started // worker occupied
	if _, err := c.Submit(ctx, service.Spec{Type: "sensitivity", Sensitivity: "pagesize"}); err != nil {
		t.Fatalf("submit 2: %v", err)
	}

	_, err := c.Submit(ctx, service.Spec{Type: "sensitivity", Sensitivity: "watermark"})
	if apiStatus(err) != http.StatusTooManyRequests {
		t.Fatalf("saturated submit err = %v, want typed 429", err)
	}
	var ae *client.APIError
	if !errors.As(err, &ae) || !ae.Retryable() {
		t.Errorf("429 must be classified retryable, got %v", err)
	}
	// The raw response carries Retry-After for clients that honor it.
	resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/jobs", `{"type":"sensitivity","sensitivity":"watermark"}`, nil)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Errorf("raw saturated submit: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	// Invalid specs are rejected up front, not queued — and not retryable.
	_, err = c.Submit(ctx, service.Spec{Type: "figure", Figure: 99})
	if apiStatus(err) != http.StatusBadRequest {
		t.Errorf("invalid spec err = %v, want typed 400", err)
	}
	if errors.As(err, &ae) && ae.Retryable() {
		t.Error("400 must not be retryable")
	}
	if resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/jobs", `{"type":"figure","bogus":1}`, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
}

func TestCancelMidRun(t *testing.T) {
	svc, ts, release, started := blockedServer(t, 1, 4)
	defer func() {
		close(release)
		ts.Close()
		svc.Shutdown(context.Background())
	}()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	sub, err := c.Submit(ctx, service.Spec{Type: "sensitivity", Sensitivity: "tlb"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // mid-run

	if _, err := c.Cancel(ctx, sub.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	got, err := c.WaitTerminal(ctx, sub.ID, 10*time.Millisecond)
	if err != nil || got.State != service.StateCanceled {
		t.Fatalf("state after cancel = %s (%v), want canceled", got.State, err)
	}
	if _, err := c.Result(ctx, sub.ID); apiStatus(err) != http.StatusConflict {
		t.Errorf("result of canceled job err = %v, want typed 409", err)
	}
	if _, err := c.Status(ctx, "nope"); apiStatus(err) != http.StatusNotFound {
		t.Errorf("unknown job err = %v, want typed 404", err)
	}
}

// TestGracefulDrain mirrors gpsd's SIGTERM path: running jobs finish under
// the drain deadline, queued jobs are canceled, late submissions get 503
// and healthz flips to a draining body.
func TestGracefulDrain(t *testing.T) {
	svc, ts, release, started := blockedServer(t, 1, 4)
	defer ts.Close()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	ctx := context.Background()

	running, err := c.Submit(ctx, service.Spec{Type: "sensitivity", Sensitivity: "tlb"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := c.Submit(ctx, service.Spec{Type: "sensitivity", Sensitivity: "pagesize"})
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(30 * time.Millisecond)
		close(release)
	}()
	sctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(sctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if st, _ := svc.Job(running.ID); st.State != service.StateDone {
		t.Errorf("running job drained to %s, want done", st.State)
	}
	if st, _ := svc.Job(queued.ID); st.State != service.StateCanceled {
		t.Errorf("queued job drained to %s, want canceled", st.State)
	}
	if _, err := c.Submit(ctx, service.Spec{Type: "table", Table: 1}); apiStatus(err) != http.StatusServiceUnavailable {
		t.Errorf("submit after drain err = %v, want typed 503", err)
	}
	// Healthz answers 503 with a full body, not an empty response.
	hz, err := c.Healthz(ctx)
	if apiStatus(err) != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Errorf("healthz during drain = %+v / %v, want draining body with typed 503", hz, err)
	}
}

// TestResultSchemaMatchesCLI asserts byte-compatibility of the service
// result payload with gpsbench -json: both are report.Report encodings.
// This check is raw on purpose: the typed client would decode the bytes.
func TestResultSchemaMatchesCLI(t *testing.T) {
	want := report.Report{ParallelWorkers: 3}
	want.AddTable("figure3", "x")
	want.Sections = []report.Section{{Name: "figure3", Seconds: 0.5}}
	var cli bytes.Buffer
	if err := want.Encode(&cli); err != nil {
		t.Fatal(err)
	}

	svc := service.New(service.Config{
		Workers: 1,
		Execute: func(ctx context.Context, spec service.Spec) (*report.Report, error) {
			r := want
			return &r, nil
		},
	})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(New(svc))
	defer ts.Close()
	c := client.New(ts.URL, client.WithHTTPClient(ts.Client()))

	sub, err := c.Submit(context.Background(), service.Spec{Type: "figure", Figure: 3})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, sub.ID)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+sub.ID+"/result", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != cli.String() {
		t.Errorf("service result differs from CLI encoding:\n--- service ---\n%s\n--- cli ---\n%s", body, cli.String())
	}
}
