package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gps/internal/report"
	"gps/internal/service"
)

// doJSON issues one request and decodes the JSON body into out (if non-nil).
func doJSON(t *testing.T, client *http.Client, method, url string, body string, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp
}

// jobView mirrors the submit/status response shape.
type jobView struct {
	ID        string       `json:"id"`
	Hash      string       `json:"hash"`
	State     string       `json:"state"`
	Outcome   string       `json:"outcome"`
	CellsDone uint64       `json:"cells_done"`
	CacheHit  bool         `json:"cache_hit"`
	Error     string       `json:"error"`
	Spec      service.Spec `json:"spec"`
}

// pollTerminal polls a job until it leaves queued/running.
func pollTerminal(t *testing.T, client *http.Client, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var jv jobView
		resp := doJSON(t, client, "GET", base+"/v1/jobs/"+id, "", &jv)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, resp.StatusCode)
		}
		if jv.State == "done" || jv.State == "failed" || jv.State == "canceled" {
			return jv
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobView{}
}

// TestEndToEndSubmitPollResult drives the full API against real simulations:
// N concurrent submissions on a bounded worker pool, then a repeated
// identical spec served from the content-addressed cache with no second
// execution.
func TestEndToEndSubmitPollResult(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulation")
	}
	svc := service.New(service.Config{Workers: 2, QueueDepth: 16})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(New(svc))
	defer ts.Close()
	client := ts.Client()

	// One tiny real-simulation matrix spec plus instant static specs,
	// submitted concurrently to exercise the pool under -race.
	specs := []string{
		`{"type":"matrix","iterations":1,"cells":[
		   {"app":"jacobi","paradigm":"GPS","gpus":2,"fabric":"pcie4"},
		   {"app":"jacobi","paradigm":"memcpy","gpus":2,"fabric":"pcie4"}]}`,
		`{"type":"table","table":1}`,
		`{"type":"table","table":2}`,
		`{"type":"figure","figure":3}`,
	}
	ids := make([]string, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			var jv jobView
			resp := doJSON(t, client, "POST", ts.URL+"/v1/jobs", spec, &jv)
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
				return
			}
			ids[i] = jv.ID
		}(i, spec)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for _, id := range ids {
		jv := pollTerminal(t, client, ts.URL, id)
		if jv.State != "done" {
			t.Fatalf("job %s finished %s: %s", id, jv.State, jv.Error)
		}
	}

	// The matrix job's progress counter saw both cells.
	var matrixStatus jobView
	doJSON(t, client, "GET", ts.URL+"/v1/jobs/"+ids[0], "", &matrixStatus)
	if matrixStatus.CellsDone != 2 {
		t.Errorf("matrix cells_done = %d, want 2", matrixStatus.CellsDone)
	}

	// Its result is the shared report schema with one rendered table.
	var rep report.Report
	resp := doJSON(t, client, "GET", ts.URL+"/v1/jobs/"+ids[0]+"/result", "", &rep)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", resp.StatusCode)
	}
	if len(rep.Tables) != 1 || !strings.Contains(rep.Tables[0].Text, "jacobi/GPS/2gpu/pcie4") {
		t.Fatalf("result tables missing matrix rows: %+v", rep.Tables)
	}
	if rep.Cache.TraceBuilds == 0 {
		t.Error("result cache stats empty, want runner counters")
	}

	// Resubmitting the identical spec (differently spelled) is a cache hit:
	// no execution, job born done, counter incremented.
	before := svc.Metrics()
	var cached jobView
	resp = doJSON(t, client, "POST", ts.URL+"/v1/jobs",
		`{"type":"MATRIX","iterations":1,"cells":[
		   {"app":"jacobi","paradigm":"gps","gpus":2,"fabric":"PCIE4"},
		   {"app":"jacobi","paradigm":"MEMCPY","gpus":2,"fabric":"pcie4"}]}`, &cached)
	if resp.StatusCode != http.StatusOK || cached.Outcome != "cached" || cached.State != "done" {
		t.Fatalf("repeat submit: status %d outcome %s state %s, want 200/cached/done",
			resp.StatusCode, cached.Outcome, cached.State)
	}
	after := svc.Metrics()
	if after.ResultCacheHits != before.ResultCacheHits+1 {
		t.Errorf("cache hits %d -> %d, want +1", before.ResultCacheHits, after.ResultCacheHits)
	}
	if after.ExecSecondsTotal != before.ExecSecondsTotal && after.JobsSubmitted != before.JobsSubmitted+1 {
		t.Errorf("cached submit must not execute")
	}

	// Metrics and health endpoints respond.
	var m service.Metrics
	if resp := doJSON(t, client, "GET", ts.URL+"/v1/metrics", "", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if m.QueueCapacity != 16 || m.Workers != 2 {
		t.Errorf("metrics queue/workers = %d/%d, want 16/2", m.QueueCapacity, m.Workers)
	}
	var hz map[string]any
	if resp := doJSON(t, client, "GET", ts.URL+"/v1/healthz", "", &hz); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	if hz["status"] != "ok" {
		t.Errorf("healthz = %v", hz)
	}
}

// blockedServer builds a server whose executor parks jobs until release is
// closed (or their context is canceled).
func blockedServer(t *testing.T, workers, depth int) (*service.Server, *httptest.Server, chan struct{}, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	started := make(chan struct{}, 64)
	svc := service.New(service.Config{
		Workers:    workers,
		QueueDepth: depth,
		Execute: func(ctx context.Context, spec service.Spec) (*report.Report, error) {
			started <- struct{}{}
			select {
			case <-release:
				return &report.Report{}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ts := httptest.NewServer(New(svc))
	return svc, ts, release, started
}

func TestQueueSaturationReturns429(t *testing.T) {
	svc, ts, release, started := blockedServer(t, 1, 1)
	defer func() {
		close(release)
		ts.Close()
		svc.Shutdown(context.Background())
	}()
	client := ts.Client()

	submit := func(body string) (*http.Response, jobView) {
		var jv jobView
		resp := doJSON(t, client, "POST", ts.URL+"/v1/jobs", body, &jv)
		return resp, jv
	}

	if resp, _ := submit(`{"type":"sensitivity","sensitivity":"tlb"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: %d", resp.StatusCode)
	}
	<-started // worker occupied
	if resp, _ := submit(`{"type":"sensitivity","sensitivity":"pagesize"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2: %d", resp.StatusCode)
	}

	resp, _ := submit(`{"type":"sensitivity","sensitivity":"watermark"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}

	// Invalid specs are rejected up front, not queued.
	if resp, _ := submit(`{"type":"figure","figure":99}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec: %d, want 400", resp.StatusCode)
	}
	if resp, _ := submit(`{"type":"figure","bogus":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: %d, want 400", resp.StatusCode)
	}
}

func TestCancelMidRun(t *testing.T) {
	svc, ts, release, started := blockedServer(t, 1, 4)
	defer func() {
		close(release)
		ts.Close()
		svc.Shutdown(context.Background())
	}()
	client := ts.Client()

	var jv jobView
	doJSON(t, client, "POST", ts.URL+"/v1/jobs", `{"type":"sensitivity","sensitivity":"tlb"}`, &jv)
	<-started // mid-run

	if resp := doJSON(t, client, "DELETE", ts.URL+"/v1/jobs/"+jv.ID, "", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	got := pollTerminal(t, client, ts.URL, jv.ID)
	if got.State != "canceled" {
		t.Fatalf("state after cancel = %s, want canceled", got.State)
	}
	if resp := doJSON(t, client, "GET", ts.URL+"/v1/jobs/"+jv.ID+"/result", "", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("result of canceled job: %d, want 409", resp.StatusCode)
	}
	if resp := doJSON(t, client, "GET", ts.URL+"/v1/jobs/nope", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestGracefulDrain mirrors gpsd's SIGTERM path: running jobs finish under
// the drain deadline, queued jobs are canceled, late submissions get 503.
func TestGracefulDrain(t *testing.T) {
	svc, ts, release, started := blockedServer(t, 1, 4)
	defer ts.Close()
	client := ts.Client()

	var running, queued jobView
	doJSON(t, client, "POST", ts.URL+"/v1/jobs", `{"type":"sensitivity","sensitivity":"tlb"}`, &running)
	<-started
	doJSON(t, client, "POST", ts.URL+"/v1/jobs", `{"type":"sensitivity","sensitivity":"pagesize"}`, &queued)

	go func() {
		time.Sleep(30 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if st, _ := svc.Job(running.ID); st.State != service.StateDone {
		t.Errorf("running job drained to %s, want done", st.State)
	}
	if st, _ := svc.Job(queued.ID); st.State != service.StateCanceled {
		t.Errorf("queued job drained to %s, want canceled", st.State)
	}
	resp := doJSON(t, client, "POST", ts.URL+"/v1/jobs", `{"type":"table","table":1}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after drain: %d, want 503", resp.StatusCode)
	}
}

// TestResultSchemaMatchesCLI asserts byte-compatibility of the service
// result payload with gpsbench -json: both are report.Report encodings.
func TestResultSchemaMatchesCLI(t *testing.T) {
	want := report.Report{ParallelWorkers: 3}
	want.AddTable("figure3", "x")
	want.Sections = []report.Section{{Name: "figure3", Seconds: 0.5}}
	var cli bytes.Buffer
	if err := want.Encode(&cli); err != nil {
		t.Fatal(err)
	}

	svc := service.New(service.Config{
		Workers: 1,
		Execute: func(ctx context.Context, spec service.Spec) (*report.Report, error) {
			r := want
			return &r, nil
		},
	})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(New(svc))
	defer ts.Close()
	client := ts.Client()

	var jv jobView
	doJSON(t, client, "POST", ts.URL+"/v1/jobs", `{"type":"figure","figure":3}`, &jv)
	pollTerminal(t, client, ts.URL, jv.ID)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+jv.ID+"/result", nil)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != cli.String() {
		t.Errorf("service result differs from CLI encoding:\n--- service ---\n%s\n--- cli ---\n%s", body, cli.String())
	}
}
