package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gps/internal/client"
	"gps/internal/cluster"
	"gps/internal/report"
	"gps/internal/service"
)

// clusterNode is one member of an httptest cluster: the service, its
// cluster view, the HTTP server, and an execution counter proving where the
// engine actually ran.
type clusterNode struct {
	id      string
	svc     *service.Server
	clu     *cluster.Cluster
	ts      *httptest.Server
	exec    atomic.Int64
	c       *client.Client
	jpath   string
	journal *service.Journal
}

// newTestCluster boots len(ids) fully wired nodes, each with a journal and
// the replication stream enabled (as gpsd -journal in cluster mode). mkExec
// builds each node's executor around its counter; nil uses a fast
// deterministic one that renders the spec into the report (so byte-identity
// across nodes is a meaningful check).
func newTestCluster(t *testing.T, ids []string,
	mkExec func(id string, n *clusterNode) service.ExecuteFunc,
	cfgFns ...func(*service.Config)) map[string]*clusterNode {
	t.Helper()
	dir := t.TempDir()
	nodes := make(map[string]*clusterNode, len(ids))
	for _, id := range ids {
		n := &clusterNode{id: id, jpath: dir + "/" + id + ".journal"}
		n.clu = cluster.New(cluster.Config{Self: id})
		exec := mkExec(id, n)
		if exec == nil {
			exec = func(ctx context.Context, spec service.Spec) (*report.Report, error) {
				n.exec.Add(1)
				r := &report.Report{ParallelWorkers: 1}
				r.AddTable("spec", fmt.Sprintf("%s fig=%d seed=%d", spec.Type, spec.Figure, spec.Seed))
				return r, nil
			}
		}
		j, err := service.OpenJournal(n.jpath)
		if err != nil {
			t.Fatal(err)
		}
		n.journal = j
		cfg := service.Config{
			NodeID:       id,
			Workers:      1,
			QueueDepth:   8,
			Execute:      exec,
			Journal:      j,
			RemoteResult: n.clu.FetchPeerResult,
		}
		for _, fn := range cfgFns {
			fn(&cfg)
		}
		n.svc = service.New(cfg)
		n.clu.Bind(n.svc)
		n.journal.SetSink(n.clu)
		n.clu.EnableReplication()
		n.ts = httptest.NewServer(New(n.svc, WithCluster(n.clu)))
		n.c = client.New(n.ts.URL)
		nodes[id] = n
	}
	for _, a := range ids {
		for _, b := range ids {
			if a != b {
				nodes[a].clu.AddPeer(b, nodes[b].ts.URL)
			}
		}
	}
	probeAll(nodes)
	flushAll(nodes) // initial snapshot flush arms the inline stream
	t.Cleanup(func() {
		for _, n := range nodes {
			n.ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			n.svc.Shutdown(ctx)
			cancel()
			n.journal.Close()
		}
	})
	return nodes
}

func probeAll(nodes map[string]*clusterNode) {
	for _, n := range nodes {
		n.clu.ProbeOnce(context.Background())
	}
}

// flushAll pushes each node's pending replication state (the initial
// full-state snapshot, or anything buffered while a successor was down).
func flushAll(nodes map[string]*clusterNode) {
	for _, n := range nodes {
		n.clu.FlushReplication(context.Background())
	}
}

// killNode simulates a SIGKILL: the listener drops with no drain and no
// journal close, and the survivors probe until the suspicion threshold
// declares the victim dead (which triggers their takeover sweeps).
func killNode(t *testing.T, nodes map[string]*clusterNode, victim string) {
	t.Helper()
	nodes[victim].ts.Close()
	for i := 0; i < 4; i++ { // past the default threshold of 3
		for id, n := range nodes {
			if id != victim {
				n.clu.ProbeOnce(context.Background())
			}
		}
	}
	for id, n := range nodes {
		if id == victim {
			continue
		}
		if p, ok := n.clu.Peer(victim); !ok || p.Alive() {
			t.Fatalf("%s still considers %s alive after threshold probes", id, victim)
		}
	}
}

// specOwnedBy finds a figure spec whose canonical hash the ring assigns to
// the wanted node, by walking seeds.
func specOwnedBy(t *testing.T, n *clusterNode, owner string) service.Spec {
	t.Helper()
	for seed := int64(1); seed < 4096; seed++ {
		spec := service.Spec{Type: "figure", Figure: 3, Seed: seed}
		canon, err := spec.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		if n.clu.Owner(canon.Hash()) == owner {
			return spec
		}
	}
	t.Fatalf("no seed maps to owner %s", owner)
	return service.Spec{}
}

// rawGet fetches a path from a node and returns status code and body bytes.
func rawGet(t *testing.T, n *clusterNode, path string) (int, []byte) {
	t.Helper()
	resp, err := n.ts.Client().Get(n.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// submitVia posts a spec through a node's typed client.
func submitVia(t *testing.T, n *clusterNode, spec service.Spec) client.SubmitResult {
	t.Helper()
	sub, err := n.c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit via %s: %v", n.id, err)
	}
	return sub
}

// TestClusterByteIdenticalResults is the headline acceptance path: a spec
// submitted through node A lands on its owner B, and once done the report
// read from A, B, and C is byte-identical (owner serves directly, the
// others proxy raw bytes).
func TestClusterByteIdenticalResults(t *testing.T) {
	nodes := newTestCluster(t, []string{"a", "b", "c"},
		func(string, *clusterNode) service.ExecuteFunc { return nil })

	spec := specOwnedBy(t, nodes["a"], "b")
	sub := submitVia(t, nodes["a"], spec)
	if service.JobNode(sub.ID) != "b" {
		t.Fatalf("job %s not owned by b", sub.ID)
	}
	st, err := nodes["c"].c.WaitTerminal(context.Background(), sub.ID, 5*time.Millisecond)
	if err != nil || st.State != service.StateDone {
		t.Fatalf("wait via c: state %s err %v", st.State, err)
	}
	if st.NodeID != "b" {
		t.Fatalf("status node_id = %q, want b", st.NodeID)
	}

	var bodies [][]byte
	for _, id := range []string{"a", "b", "c"} {
		code, body := rawGet(t, nodes[id], "/v1/jobs/"+sub.ID+"/result")
		if code != http.StatusOK {
			t.Fatalf("result from %s: status %d (%s)", id, code, body)
		}
		bodies = append(bodies, body)
	}
	if string(bodies[0]) != string(bodies[1]) || string(bodies[0]) != string(bodies[2]) {
		t.Fatal("results differ across nodes")
	}
	if !strings.Contains(string(bodies[0]), "fig=3") {
		t.Fatalf("result missing rendered spec: %s", bodies[0])
	}

	if got := nodes["b"].exec.Load(); got != 1 {
		t.Fatalf("owner executed %d times, want 1", got)
	}
	if got := nodes["a"].exec.Load() + nodes["c"].exec.Load(); got != 0 {
		t.Fatalf("non-owners executed %d times, want 0", got)
	}
	if fw := nodes["a"].clu.Stats().Forwards; fw != 1 {
		t.Fatalf("a forwarded %d submits, want 1", fw)
	}
	if pr := nodes["a"].clu.Stats().ProxiedReads; pr == 0 {
		t.Fatal("a served the foreign result without proxying")
	}
}

// TestClusterCrossNodeSingleFlight submits the same spec through two
// different non-owner nodes while the owner's worker is parked; both must
// coalesce onto the owner's single in-flight job, and the engine runs
// exactly once cluster-wide.
func TestClusterCrossNodeSingleFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	nodes := newTestCluster(t, []string{"a", "b", "c"},
		func(id string, n *clusterNode) service.ExecuteFunc {
			return func(ctx context.Context, spec service.Spec) (*report.Report, error) {
				n.exec.Add(1)
				started <- struct{}{}
				select {
				case <-release:
					return &report.Report{ParallelWorkers: 2}, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		})

	spec := specOwnedBy(t, nodes["a"], "b")
	first := submitVia(t, nodes["a"], spec)
	<-started // owner is now executing; later submits must coalesce

	var wg sync.WaitGroup
	dups := make([]client.SubmitResult, 2)
	for i, via := range []string{"a", "c"} {
		wg.Add(1)
		go func(i int, via string) {
			defer wg.Done()
			dups[i] = submitVia(t, nodes[via], spec)
		}(i, via)
	}
	wg.Wait()
	for _, d := range dups {
		if d.ID != first.ID {
			t.Fatalf("duplicate got its own job %s, want %s", d.ID, first.ID)
		}
		if d.Outcome != "coalesced" {
			t.Fatalf("duplicate outcome %q, want coalesced", d.Outcome)
		}
	}

	close(release)
	st, err := nodes["c"].c.WaitTerminal(context.Background(), first.ID, 5*time.Millisecond)
	if err != nil || st.State != service.StateDone {
		t.Fatalf("final state %s err %v", st.State, err)
	}
	if st.Coalesced != 2 {
		t.Fatalf("coalesced riders = %d, want 2", st.Coalesced)
	}
	total := nodes["a"].exec.Load() + nodes["b"].exec.Load() + nodes["c"].exec.Load()
	if total != 1 {
		t.Fatalf("engine ran %d times cluster-wide, want exactly 1", total)
	}
}

// TestClusterNodeDownReroute kills one node and checks the survivors keep
// serving: the dead node's specs re-route to the ring's live successor, and
// reads of the dead node's jobs fail with an explicit 502, not a hang.
func TestClusterNodeDownReroute(t *testing.T) {
	nodes := newTestCluster(t, []string{"a", "b", "c"},
		func(string, *clusterNode) service.ExecuteFunc { return nil })

	deadSpec := specOwnedBy(t, nodes["a"], "b")
	pre := submitVia(t, nodes["a"], deadSpec)
	st, err := nodes["a"].c.WaitTerminal(context.Background(), pre.ID, 5*time.Millisecond)
	if err != nil || st.State != service.StateDone {
		t.Fatalf("pre-kill job: %s %v", st.State, err)
	}

	// SIGKILL equivalent for an httptest node: the listener drops with no
	// drain, and the survivors probe past the suspicion threshold.
	killNode(t, nodes, "b")

	// A fresh spec whose full-ring owner is the dead b must re-route to a
	// live node and complete.
	full := cluster.NewRing(0)
	for _, id := range []string{"a", "b", "c"} {
		full.Add(id)
	}
	spec2 := service.Spec{Type: "figure", Figure: 3}
	for seed := int64(20000); ; seed++ {
		spec2.Seed = seed
		canon, _ := spec2.Canonicalize()
		if full.Owner(canon.Hash()) == "b" {
			break
		}
	}
	sub := submitVia(t, nodes["a"], spec2)
	if owner := service.JobNode(sub.ID); owner == "b" {
		t.Fatalf("job %s still routed to the dead node", sub.ID)
	}
	st, err = nodes["c"].c.WaitTerminal(context.Background(), sub.ID, 5*time.Millisecond)
	if err != nil || st.State != service.StateDone {
		t.Fatalf("re-routed job: %s %v", st.State, err)
	}

	// Reads of the dead node's job IDs no longer 502: they fall back to the
	// takeover target. pre.ID finished before the kill, so its replicated
	// record was pruned and no survivor adopted it — the fallback answers a
	// clean 404 instead of an endless bad gateway.
	code, body := rawGet(t, nodes["a"], "/v1/jobs/"+pre.ID)
	if code != http.StatusNotFound {
		t.Fatalf("read of dead node's done job: %d (%s), want 404", code, body)
	}

	// Healthz on a survivor reflects the dead peer.
	h, err := nodes["a"].c.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "cluster" || h.NodeID != "a" || h.PeersAlive != 1 || h.PeersTotal != 2 {
		t.Fatalf("healthz after kill = %+v", h)
	}
}

// TestClusterPeerResultFetch checks the content-addressed peer fetch: a
// spec already completed on one node is answered by its owner without
// re-executing, by pulling the report from the peer's cache.
func TestClusterPeerResultFetch(t *testing.T) {
	nodes := newTestCluster(t, []string{"a", "b", "c"},
		func(string, *clusterNode) service.ExecuteFunc { return nil })

	spec := specOwnedBy(t, nodes["a"], "b")

	// Execute on c against routing: the loop-guard header forces local
	// handling (also proving the guard works).
	canon, _ := spec.Canonicalize()
	req, _ := http.NewRequest(http.MethodPost, nodes["c"].ts.URL+"/v1/jobs",
		strings.NewReader(fmt.Sprintf(`{"type":"figure","figure":3,"seed":%d}`, spec.Seed)))
	req.Header.Set(cluster.ForwardHeader, "test")
	resp, err := nodes["c"].ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("guarded submit to c: %d, want 202 (local handling)", resp.StatusCode)
	}
	waitCached := func(n *clusterNode) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if _, ok := n.svc.ResultByHash(canon.Hash()); ok {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("hash never cached on %s", n.id)
	}
	waitCached(nodes["c"])
	if got := nodes["c"].exec.Load(); got != 1 {
		t.Fatalf("c executed %d times, want 1", got)
	}

	// Now the routed submit: a forwards to owner b, whose pre-execution
	// remote lookup finds c's cached report and completes without running.
	sub := submitVia(t, nodes["a"], spec)
	if service.JobNode(sub.ID) != "b" {
		t.Fatalf("job %s not owned by b", sub.ID)
	}
	st, err := nodes["b"].c.WaitTerminal(context.Background(), sub.ID, 5*time.Millisecond)
	if err != nil || st.State != service.StateDone {
		t.Fatalf("peer-fetched job: %s %v", st.State, err)
	}
	if !st.PeerFetched {
		t.Fatal("status not marked peer_fetched")
	}
	if got := nodes["b"].exec.Load(); got != 0 {
		t.Fatalf("owner executed %d times, want 0 (peer fetch)", got)
	}
	if got := nodes["b"].svc.Metrics().JobsPeerFetched; got != 1 {
		t.Fatalf("jobs_peer_fetched = %d, want 1", got)
	}
	if got := nodes["b"].clu.Stats().PeerFetches; got != 1 {
		t.Fatalf("cluster peer_fetches = %d, want 1", got)
	}

	// The peer-fetched report served by b matches c's original bytes.
	_, fromB := rawGet(t, nodes["b"], "/v1/jobs/"+sub.ID+"/result")
	code, fromC := rawGet(t, nodes["c"], "/v1/peer/results/"+canon.Hash())
	if code != http.StatusOK || string(fromB) != string(fromC) {
		t.Fatalf("peer-fetched report differs from source (peer code %d)", code)
	}
}

// TestClusterWorkStealing parks the victim's worker, queues a second job,
// and lets the thief pull it over HTTP: the job completes on the victim's
// handle while the engine runs on the thief.
func TestClusterWorkStealing(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	nodes := newTestCluster(t, []string{"v", "w"},
		func(id string, n *clusterNode) service.ExecuteFunc {
			if id != "v" {
				return nil // thief executes instantly
			}
			return func(ctx context.Context, spec service.Spec) (*report.Report, error) {
				n.exec.Add(1)
				started <- struct{}{}
				select {
				case <-release:
					return &report.Report{ParallelWorkers: 3}, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		})
	defer close(release)

	// Two jobs straight into v (loop-guard header bypasses routing): the
	// first parks the only worker, the second waits in the queue.
	blockers := []string{
		`{"type":"figure","figure":3,"seed":501}`,
		`{"type":"figure","figure":3,"seed":502}`,
	}
	var queuedID string
	for i, body := range blockers {
		req, _ := http.NewRequest(http.MethodPost, nodes["v"].ts.URL+"/v1/jobs", strings.NewReader(body))
		req.Header.Set(cluster.ForwardHeader, "test")
		resp, err := nodes["v"].ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var sub client.SubmitResult
		if err := jsonDecode(resp, &sub); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			<-started // worker occupied before the second submit
		} else {
			queuedID = sub.ID
		}
	}

	// The thief's probe sees the victim overloaded (1/1 busy, 1 queued) and
	// one steal round moves the queued job.
	nodes["w"].clu.ProbeOnce(context.Background())
	if !nodes["w"].clu.StealOnce(context.Background()) {
		t.Fatal("StealOnce declined with an overloaded victim")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, rep, err := nodes["v"].svc.WaitResult(ctx, queuedID)
	if err != nil || st.State != service.StateDone {
		t.Fatalf("stolen job: state %s err %v", st.State, err)
	}
	if rep == nil || rep.ParallelWorkers != 1 {
		t.Fatalf("stolen job report %+v, want the thief's executor output", rep)
	}
	if st.StolenBy != "w" {
		t.Fatalf("stolen_by = %q, want w", st.StolenBy)
	}
	if got := nodes["w"].exec.Load(); got != 1 {
		t.Fatalf("thief executed %d times, want 1", got)
	}
	vm := nodes["v"].svc.Metrics()
	if vm.JobsStolen != 1 || vm.StealsCompleted != 1 {
		t.Fatalf("victim steal counters %d/%d, want 1/1", vm.JobsStolen, vm.StealsCompleted)
	}
	if got := nodes["w"].clu.Stats().StealsThief; got != 1 {
		t.Fatalf("thief counter = %d, want 1", got)
	}

	// An idle victim yields nothing to steal.
	nodes["w"].clu.ProbeOnce(context.Background())
	if nodes["w"].clu.StealOnce(context.Background()) {
		t.Fatal("stole from a victim with an empty queue")
	}
}

// jsonDecode drains and decodes one response body.
func jsonDecode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, out)
}
