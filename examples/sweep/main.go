// Sweep: one program measured across every interconnect generation and
// paradigm — a miniature of the paper's Figure 13 sensitivity study, built
// entirely on the public API. It shows the paper's central observation:
// conventional paradigms stay interconnect-bound across PCIe generations,
// while GPS converts added bandwidth into scaling.
//
//	go run ./examples/sweep
package main

import (
	"fmt"
	"log"

	"gps"
)

const (
	gpus     = 4
	arrBytes = 8 << 20
	iters    = 5
)

// buildWave records a two-field wave propagation with deep halos and
// double-pass writes (the EQWP-like pattern the write queue coalesces).
func buildWave() *gps.System {
	sys, err := gps.NewSystem(gps.Config{
		GPUs:         gpus,
		Interconnect: gps.PCIe4,
		Paradigm:     gps.ParadigmGPS,
		L2:           gps.L2Model{BaseHit: 0.55, SlopePerDoubling: 0.065, MaxHit: 0.75},
	})
	if err != nil {
		log.Fatal(err)
	}
	var fields [2][2]*gps.Buffer // [field][parity]
	for f := 0; f < 2; f++ {
		for par := 0; par < 2; par++ {
			b, err := sys.MallocGPS(fmt.Sprintf("f%d.%d", f, par), arrBytes)
			if err != nil {
				log.Fatal(err)
			}
			fields[f][par] = b
		}
	}
	if err := sys.TrackingStart(); err != nil {
		log.Fatal(err)
	}

	per := uint64(arrBytes / gpus)
	halo := uint64(256 << 10)
	for iter := 0; iter < iters; iter++ {
		src, dst := iter%2, 1-iter%2
		var kernels []*gps.KernelBuilder
		for dev := 0; dev < gpus; dev++ {
			lo := uint64(dev) * per
			k := sys.NewKernel(dev, "wave.step").Compute(uint64(30 * 2 * 2 * per))
			for f := 0; f < 2; f++ {
				readLo, readSize := lo, per
				if dev > 0 {
					readLo -= halo
					readSize += halo
				}
				if dev < gpus-1 {
					readSize += halo
				}
				k = k.Load(fields[f][src], readLo, readSize).
					StoreMultiPass(fields[f][dst], lo, per, 2, 288).
					LocalStream(50 * per)
			}
			kernels = append(kernels, k)
		}
		if err := sys.Launch(kernels...); err != nil {
			log.Fatal(err)
		}
		if iter == 0 {
			if err := sys.TrackingStop(); err != nil {
				log.Fatal(err)
			}
		}
	}
	return sys
}

func main() {
	sys := buildWave()
	paradigms := []gps.Paradigm{gps.ParadigmUM, gps.ParadigmRDL, gps.ParadigmMemcpy, gps.ParadigmGPS}
	fabrics := []gps.Interconnect{gps.PCIe3, gps.PCIe4, gps.PCIe5, gps.PCIe6, gps.InfiniteBW}

	fmt.Printf("%-22s", "steady time (ms)")
	for _, p := range paradigms {
		fmt.Printf("%12s", p)
	}
	fmt.Println()
	for _, ic := range fabrics {
		fmt.Printf("%-22s", ic)
		for _, p := range paradigms {
			res, err := sys.RunWith(p, ic)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.3f", res.SteadyTime*1e3)
		}
		fmt.Println()
	}
	fmt.Println("\nGPS approaches the infinite-bandwidth bound as the fabric speeds up;")
	fmt.Println("memcpy stays serialized at barriers and UM stays fault-bound.")
}
