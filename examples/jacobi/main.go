// Jacobi: a 2D stencil with halo exchange — the canonical peer-to-peer
// workload of the paper's Table 2 — compared across every memory
// management paradigm on one interconnect. Interior pages end up with a
// single subscriber; only the halo pages are replicated, so GPS moves a
// tiny fraction of the data the bulk-synchronous memcpy paradigm
// broadcasts.
//
//	go run ./examples/jacobi
package main

import (
	"fmt"
	"log"

	"gps"
)

const (
	gpus     = 4
	rowBytes = 16 << 10 // one row block
	rows     = 1024     // 16 MB per array
	arrBytes = rows * rowBytes
	haloRows = 4
	iters    = 6
)

func buildProgram() *gps.System {
	sys, err := gps.NewSystem(gps.Config{
		GPUs:         gpus,
		Interconnect: gps.PCIe4,
		Paradigm:     gps.ParadigmGPS,
		L2:           gps.L2Model{BaseHit: 0.35, SlopePerDoubling: 0.02, MaxHit: 0.55},
	})
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.MallocGPS("gridA", arrBytes)
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.MallocGPS("gridB", arrBytes)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.TrackingStart(); err != nil {
		log.Fatal(err)
	}

	rowsPer := uint64(rows / gpus)
	for iter := 0; iter < iters; iter++ {
		src, dst := a, b
		if iter%2 == 1 {
			src, dst = b, a
		}
		var kernels []*gps.KernelBuilder
		for dev := 0; dev < gpus; dev++ {
			lo := uint64(dev) * rowsPer * rowBytes
			size := rowsPer * rowBytes
			readLo, readSize := lo, size
			if dev > 0 {
				readLo -= haloRows * rowBytes
				readSize += haloRows * rowBytes
			}
			if dev < gpus-1 {
				readSize += haloRows * rowBytes
			}
			k := sys.NewKernel(dev, "jacobi.sweep").
				Load(src, readLo, readSize). // own slab + neighbor halos
				Store(dst, lo, size).        // own slab of the output
				Compute(uint64(120 * size)). // 5-point stencil work
				LocalStream(4 * size)        // temporaries
			kernels = append(kernels, k)
		}
		if err := sys.Launch(kernels...); err != nil {
			log.Fatal(err)
		}
		if iter == 0 {
			if err := sys.TrackingStop(); err != nil {
				log.Fatal(err)
			}
		}
	}
	return sys
}

func main() {
	sys := buildProgram()

	fmt.Printf("%-12s %12s %14s %10s\n", "paradigm", "steady (ms)", "traffic (MB)", "faults")
	times := map[gps.Paradigm]float64{}
	for _, p := range []gps.Paradigm{
		gps.ParadigmUM, gps.ParadigmUMHints, gps.ParadigmRDL,
		gps.ParadigmMemcpy, gps.ParadigmGPS, gps.ParadigmInfinite,
	} {
		ic := gps.PCIe4
		if p == gps.ParadigmInfinite {
			ic = gps.InfiniteBW
		}
		res, err := sys.RunWith(p, ic)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12.3f %14.2f %10d\n", p,
			res.SteadyTime*1e3, float64(res.InterconnectBytes)/1e6, res.PageFaults)
		times[p] = res.SteadyTime
	}
	fmt.Printf("\nGPS vs memcpy: %.2fx faster (fine-grained pushes overlap; broadcasts do not)\n",
		times[gps.ParadigmMemcpy]/times[gps.ParadigmGPS])
	fmt.Printf("GPS vs UM:     %.2fx faster (no fault serialization)\n",
		times[gps.ParadigmUM]/times[gps.ParadigmGPS])
	fmt.Printf("GPS captures %.0f%% of the infinite-bandwidth bound\n",
		times[gps.ParadigmInfinite]/times[gps.ParadigmGPS]*100)
}
