// Scale16: strong scaling of one program from 1 to 16 GPUs under GPS and
// the conventional paradigms — a public-API miniature of the paper's
// Figure 12 study. The same total problem is partitioned across more GPUs
// on a projected PCIe 6.0 interconnect.
//
//	go run ./examples/scale16
package main

import (
	"fmt"
	"log"

	"gps"
)

const (
	arrBytes = 16 << 20 // 16 MB grid
	rowBytes = 16 << 10
	haloRows = 8
	iters    = 5
)

// buildAt records the halo-exchange program partitioned across `gpus`.
func buildAt(gpus int) *gps.System {
	sys, err := gps.NewSystem(gps.Config{
		GPUs:         gpus,
		Interconnect: gps.PCIe6,
		Paradigm:     gps.ParadigmGPS,
		L2:           gps.L2Model{BaseHit: 0.4, SlopePerDoubling: 0.03, MaxHit: 0.6},
	})
	if err != nil {
		log.Fatal(err)
	}
	a, err := sys.MallocGPS("gridA", arrBytes)
	if err != nil {
		log.Fatal(err)
	}
	b, err := sys.MallocGPS("gridB", arrBytes)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.TrackingStart(); err != nil {
		log.Fatal(err)
	}
	rows := uint64(arrBytes / rowBytes)
	rowsPer := rows / uint64(gpus)
	for iter := 0; iter < iters; iter++ {
		src, dst := a, b
		if iter%2 == 1 {
			src, dst = b, a
		}
		var kernels []*gps.KernelBuilder
		for dev := 0; dev < gpus; dev++ {
			lo := uint64(dev) * rowsPer * rowBytes
			size := rowsPer * rowBytes
			if dev == gpus-1 {
				size = uint64(arrBytes) - lo
			}
			readLo, readSize := lo, size
			if dev > 0 {
				readLo -= haloRows * rowBytes
				readSize += haloRows * rowBytes
			}
			if dev < gpus-1 {
				readSize += haloRows * rowBytes
			}
			k := sys.NewKernel(dev, "sweep").
				Load(src, readLo, readSize).
				Store(dst, lo, size).
				Compute(120 * size).
				LocalStream(4 * size)
			kernels = append(kernels, k)
		}
		if err := sys.Launch(kernels...); err != nil {
			log.Fatal(err)
		}
		if iter == 0 {
			if err := sys.TrackingStop(); err != nil {
				log.Fatal(err)
			}
		}
	}
	return sys
}

func main() {
	counts := []int{1, 2, 4, 8, 16}
	paradigms := []gps.Paradigm{gps.ParadigmUM, gps.ParadigmMemcpy, gps.ParadigmGPS, gps.ParadigmInfinite}

	// Single-GPU reference time.
	ref, err := buildAt(1).RunWith(gps.ParadigmInfinite, gps.InfiniteBW)
	if err != nil {
		log.Fatal(err)
	}
	base := ref.SteadyTime

	fmt.Printf("%-6s", "GPUs")
	for _, p := range paradigms {
		fmt.Printf("%14s", p)
	}
	fmt.Println("   (speedup over 1 GPU)")
	for _, n := range counts {
		sys := buildAt(n)
		fmt.Printf("%-6d", n)
		for _, p := range paradigms {
			ic := gps.PCIe6
			if p == gps.ParadigmInfinite {
				ic = gps.InfiniteBW
			}
			res, err := sys.RunWith(p, ic)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%13.2fx", base/res.SteadyTime)
		}
		fmt.Println()
	}
	fmt.Println("\nGPS keeps scaling where fault-driven UM collapses and bulk-synchronous")
	fmt.Println("memcpy saturates — the paper's Figure 12 in miniature.")
}
