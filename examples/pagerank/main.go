// Pagerank: an irregular graph workload whose shared writes are atomic
// accumulations — the access class the GPS write queue cannot coalesce
// (Section 7.4's 0% hit rate). This example also demonstrates manual
// subscription management: the programmer knows each GPU's scatters only
// reach neighboring partitions, so the contribution array is allocated
// with explicit subscriber lists instead of relying on profiling.
//
//	go run ./examples/pagerank
package main

import (
	"fmt"
	"log"

	"gps"
)

const (
	gpus      = 4
	vertices  = 1 << 20
	elem      = 4
	rankBytes = vertices * elem // 4 MB per vertex array
	edgeBytes = 4 << 20         // per-GPU edge partition
	iters     = 5
)

func main() {
	sys, err := gps.NewSystem(gps.Config{
		GPUs:         gpus,
		Interconnect: gps.PCIe4,
		Paradigm:     gps.ParadigmGPS,
	})
	if err != nil {
		log.Fatal(err)
	}

	ranks, err := sys.MallocGPS("ranks", rankBytes)
	if err != nil {
		log.Fatal(err)
	}

	// The contribution array is manually managed: every partition's page
	// range is subscribed by its owner and immediate neighbors only, the
	// bandwidth-saving insight the paper's automatic profiling would have
	// to discover on its own.
	contrib, err := sys.MallocGPSManual("contrib", rankBytes, 0, 1, 2, 3)
	if err != nil {
		log.Fatal(err)
	}

	var edges [gpus]*gps.Buffer
	for dev := 0; dev < gpus; dev++ {
		e, err := sys.Malloc(fmt.Sprintf("edges%d", dev), edgeBytes, dev)
		if err != nil {
			log.Fatal(err)
		}
		edges[dev] = e
	}

	if err := sys.TrackingStart(); err != nil {
		log.Fatal(err)
	}

	per := uint64(rankBytes / gpus)
	for iter := 0; iter < iters; iter++ {
		// Phase 1 — scatter: stream edges, gather ranks from the
		// neighborhood, atomically accumulate contributions.
		var scatter []*gps.KernelBuilder
		for dev := 0; dev < gpus; dev++ {
			winLo := uint64(max(0, dev-1)) * per
			winHi := uint64(min(gpus, dev+2)) * per
			k := sys.NewKernel(dev, "pagerank.scatter").
				Load(edges[dev], 0, edgeBytes).
				LoadScatter(ranks, winLo, winHi-winLo, 400, uint32(iter*131+dev)).
				AtomicScatter(contrib, winLo, winHi-winLo, 300, uint32(iter*173+dev)).
				Compute(700 * edgeBytes / 128 * 32)
			scatter = append(scatter, k)
		}
		if err := sys.Launch(scatter...); err != nil {
			log.Fatal(err)
		}

		// Phase 2 — apply: fold owned contributions into owned ranks.
		var apply []*gps.KernelBuilder
		for dev := 0; dev < gpus; dev++ {
			off := uint64(dev) * per
			k := sys.NewKernel(dev, "pagerank.apply").
				Load(contrib, off, per).
				Store(ranks, off, per).
				Compute(40 * per)
			apply = append(apply, k)
		}
		if err := sys.Launch(apply...); err != nil {
			log.Fatal(err)
		}

		if iter == 0 {
			if err := sys.TrackingStop(); err != nil {
				log.Fatal(err)
			}
		}
	}

	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GPS:", res)
	fmt.Printf("write queue hit rate: %.1f%% (atomics cannot coalesce)\n",
		res.WriteQueueHitRate*100)
	fmt.Printf("GPS-TLB hit rate:     %.1f%%\n", res.GPSTLBHitRate*100)

	rdl, err := sys.RunWith(gps.ParadigmRDL, gps.PCIe4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("RDL:", rdl)
	fmt.Printf("GPS vs RDL: %.2fx faster (demand loads stall; pushed atomics overlap)\n",
		rdl.SteadyTime/res.SteadyTime)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
