// Quickstart: the Listing 1 analogue from the paper. An iterative
// matrix-vector multiplication alternates between two vectors; the matrix
// and both vectors live in the GPS address space, the first iteration is
// profiled (cuGPSTrackingStart/Stop), and GPS automatically unsubscribes
// each GPU from the pages it never touched.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gps"
)

func main() {
	const (
		gpus    = 4
		matDim  = 2048
		elem    = 4 // float32
		vecSize = matDim * elem
		matSize = matDim * matDim * elem
		iters   = 6
	)

	sys, err := gps.NewSystem(gps.Config{
		GPUs:         gpus,
		Interconnect: gps.PCIe4,
		Paradigm:     gps.ParadigmGPS,
	})
	if err != nil {
		log.Fatal(err)
	}

	// cudaMallocGPS for the matrix and both vectors (Listing 1).
	mat, err := sys.MallocGPS("mat", matSize)
	if err != nil {
		log.Fatal(err)
	}
	vec1, err := sys.MallocGPS("vec1", vecSize)
	if err != nil {
		log.Fatal(err)
	}
	vec2, err := sys.MallocGPS("vec2", vecSize)
	if err != nil {
		log.Fatal(err)
	}

	// Automatic profiling: all GPUs tentatively subscribe to all GPS pages
	// at the start; the first iteration's accesses decide who stays.
	if err := sys.TrackingStart(); err != nil {
		log.Fatal(err)
	}

	rowsPer := uint64(matDim / gpus)
	for iter := 0; iter < iters; iter++ {
		in, out := vec1, vec2
		if iter%2 == 1 {
			in, out = vec2, vec1
		}
		var kernels []*gps.KernelBuilder
		for dev := 0; dev < gpus; dev++ {
			rowOff := uint64(dev) * rowsPer
			k := sys.NewKernel(dev, "mvmul").
				// Each GPU reads its block of matrix rows and the whole
				// input vector...
				Load(mat, rowOff*matDim*elem, rowsPer*matDim*elem).
				Load(in, 0, vecSize).
				// ...and writes its slice of the output vector. GPS
				// forwards these stores to every subscriber's replica.
				Store(out, rowOff*elem, rowsPer*elem).
				Compute(2 * rowsPer * matDim) // one FMA per element
			kernels = append(kernels, k)
		}
		if err := sys.Launch(kernels...); err != nil {
			log.Fatal(err)
		}
		if iter == 0 {
			// GPUs are unsubscribed from pages they did not touch.
			if err := sys.TrackingStop(); err != nil {
				log.Fatal(err)
			}
		}
	}

	res, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("GPS run:", res)
	fmt.Println("subscriber histogram (pages by subscriber count):", res.SubscriberHistogram)

	// The same program under baseline Unified Memory, for contrast.
	um, err := sys.RunWith(gps.ParadigmUM, gps.PCIe4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("UM run: ", um)
	fmt.Printf("GPS is %.1fx faster than UM on this program\n",
		um.SteadyTime/res.SteadyTime)
}
