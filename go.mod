module gps

go 1.22
