# Developer entry points. Everything is stdlib Go; no tools beyond `go`.

GO ?= go

.PHONY: check vet build race test bench-smoke serve-smoke

## check: full gate — vet, build, and the test suite under the race detector.
check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

race:
	$(GO) test -race ./...

test:
	$(GO) test ./...

## bench-smoke: a fast end-to-end run of the experiment harness — the
## headline figure plus the parallel runner and its JSON summary.
bench-smoke:
	$(GO) run ./cmd/gpsbench -fig 8 -iters 2 -json /tmp/gpsbench-smoke.json
	$(GO) run ./cmd/gpsim -app jacobi -paradigm GPS -gpus 4 -interconnect pcie4 -iters 2

## serve-smoke: boot gpsd on an ephemeral port, submit a small job over
## HTTP, assert a 200 result, and check the SIGTERM drain path.
serve-smoke:
	sh scripts/serve_smoke.sh
