# Developer entry points. Everything is stdlib Go; no tools beyond `go`.

GO ?= go

.PHONY: check vet build race test bench-smoke bench-micro bench-record serve-smoke chaos obs-smoke shard-smoke spill-smoke cluster-smoke trace-cluster-smoke benchgate

## check: full gate — vet, build, the test suite under the race detector,
## the microbenchmark compile/run smoke, the chaos gate (fault injection,
## fuzzing, crash recovery), the observability smoke (span traces), the
## sharded-replay smoke (byte-identical figures at -shards 4 under -race),
## the trace-spill smoke (tiny -trace-budget forcing disk spill), the
## 3-node cluster smoke (routing, coalescing, owner kill), the distributed
## tracing smoke (one cross-node trace through tracelint -cluster), and the
## perf regression gate against the committed BENCH baseline.
check: vet build race bench-micro chaos obs-smoke shard-smoke spill-smoke cluster-smoke trace-cluster-smoke benchgate

## vet: static checks — go vet plus a gofmt cleanliness gate (gofmt ships
## with the toolchain, so this adds no dependency).
vet:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt: needs formatting:"; echo "$$unformatted"; exit 1; fi

build:
	$(GO) build ./...

## The experiments package's golden equivalence suites run close to Go's
## default 600s per-package timeout under -race on one core; give the
## gate explicit headroom instead of flaking on loaded machines.
race:
	$(GO) test -race -timeout 30m ./...

test:
	$(GO) test ./...

## bench-smoke: a fast end-to-end run of the experiment harness — the
## headline figure plus the parallel runner and its JSON summary.
bench-smoke:
	$(GO) run ./cmd/gpsbench -fig 8 -iters 2 -json /tmp/gpsbench-smoke.json
	$(GO) run ./cmd/gpsim -app jacobi -paradigm GPS -gpus 4 -interconnect pcie4 -iters 2

## bench-micro: compile and run every microbenchmark exactly once, so the
## hot-path benchmarks cannot rot without failing the gate.
bench-micro:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/trace/ ./internal/engine/ ./internal/memsys/

## bench-record: record the full suite's wall clock and headline metrics
## into BENCH_<n>.json at the repo root (see scripts/bench_record.sh).
bench-record:
	sh scripts/bench_record.sh

## serve-smoke: boot gpsd on an ephemeral port, submit a small job over
## HTTP, assert a 200 result, and check the SIGTERM drain path.
serve-smoke:
	sh scripts/serve_smoke.sh

## obs-smoke: run a quick traced matrix and structurally validate the
## emitted Perfetto trace (balanced events, category nesting) via tracelint.
obs-smoke:
	sh scripts/obs_smoke.sh

## shard-smoke: run a small figure with sharded replay under the race
## detector. -parallel 1 keeps the cell matrix serial so the shard count is
## honored exactly even on a small GOMAXPROCS; the equivalence tests in
## internal/engine and internal/experiments already run under `race`, so
## this exercises the CLI wiring end to end.
shard-smoke:
	$(GO) run -race ./cmd/gpsbench -fig 9 -iters 2 -parallel 1 -shards 4 -json /tmp/gpsbench-shard-smoke.json

## spill-smoke: run a small figure with a trace budget far below any quick
## trace's compressed footprint, so the cache spills every trace to disk and
## replays read blocks back; reportlint asserts from the JSON report that the
## spill tier actually ran and the figures still rendered.
spill-smoke:
	sh scripts/spill_smoke.sh

## cluster-smoke: boot a 3-node local cluster, submit through a non-owner,
## then permanently SIGKILL an owner mid-queue and assert the self-healing
## invariants: every accepted job reaches done on a survivor (takeover under
## original IDs, exactly-once execution), results byte-identical from both
## survivors, and a resurrected node reconciles instead of re-running.
cluster-smoke:
	sh scripts/cluster_smoke.sh

## trace-cluster-smoke: boot a 3-node cluster with per-node trace dirs and
## stealing on, overload one node so peers steal its queue, then validate
## the per-node Perfetto files as one cluster with tracelint -cluster -cross:
## every parent span link resolves across files and at least one trace spans
## 2+ nodes.
trace-cluster-smoke:
	sh scripts/trace_cluster_smoke.sh

## benchgate: the perf regression gate — run the full experiment suite and
## compare its report against the committed baseline. Deterministic headline
## metrics and memoization work counters are gated tightly; wall-clock
## loosely (1.5x ratio AND a 0.5s floor), so machine noise cannot fail the
## gate. Intended changes: `make bench-record` re-blesses the baseline.
BENCH_BASELINE ?= BENCH_10.json
benchgate:
	$(GO) run ./cmd/gpsbench -all -parallel 1 -json /tmp/gpsbench-gate.json
	$(GO) run ./cmd/benchgate -baseline $(BENCH_BASELINE) -v /tmp/gpsbench-gate.json

## chaos: the resilience gate — fault-injected suites under -race, a fuzz
## pass over the trace decoder, and the SIGKILL crash-recovery smoke.
chaos:
	$(GO) test -race ./internal/faultinject/ ./internal/retry/
	$(GO) test -race -run 'Panic|Injected|CellError|Deterministic' ./internal/experiments/
	$(GO) test -race -run 'Chaos|Journal|Panic|Fault|Injected' ./internal/service/
	$(GO) test -race -run 'ZeroCell|Oversized|JournalFailure' ./internal/httpapi/
	$(GO) test -fuzz=FuzzDecodeTrace -fuzztime=10s ./internal/trace/
	$(GO) test -fuzz=FuzzColumnBlock -fuzztime=10s ./internal/trace/
	sh scripts/chaos_smoke.sh
