#!/bin/sh
# chaos_smoke.sh: crash-recovery smoke test of the gpsd job journal.
#
# Boots gpsd with a journal, submits a job, kills the daemon with SIGKILL
# mid-flight (no drain, no handshake — a real crash), restarts it on the same
# journal, and asserts the interrupted job is re-run to completion under its
# original ID without being re-submitted. Needs only a POSIX shell and curl.
set -eu

workdir=$(mktemp -d)
bin="$workdir/gpsd"
log="$workdir/gpsd.log"
journal="$workdir/gpsd.journal"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$bin" ./cmd/gpsd

start_daemon() {
    : >"$log"
    "$bin" -addr 127.0.0.1:0 -workers 1 -queue 4 -journal "$journal" >"$log" 2>&1 &
    pid=$!
    addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/^gpsd: listening on \([^ ]*\) .*/\1/p' "$log")
        [ -n "$addr" ] && break
        kill -0 "$pid" 2>/dev/null || { echo "chaos-smoke: gpsd died:"; cat "$log"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "chaos-smoke: no listen line in gpsd output"; cat "$log"; exit 1; }
    base="http://$addr/v1"
}

# First life: submit one job and kill the daemon before it can finish.
start_daemon
echo "chaos-smoke: gpsd at $base (journal $journal)"

spec='{"type":"matrix","iterations":2,"cells":[{"app":"jacobi","paradigm":"GPS","gpus":2,"fabric":"pcie4"}]}'
code=$(curl -s -o "$workdir/submit" -w '%{http_code}' -d "$spec" "$base/jobs")
[ "$code" = 202 ] || { echo "chaos-smoke: submit returned $code:"; cat "$workdir/submit"; exit 1; }
id=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/submit" | head -n 1)
[ -n "$id" ] || { echo "chaos-smoke: no job id in submit response"; cat "$workdir/submit"; exit 1; }
echo "chaos-smoke: submitted $id, killing gpsd with SIGKILL"

kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

# Second life: same journal, fresh process. The submit record must bring the
# job back under its original ID.
start_daemon
echo "chaos-smoke: restarted at $base"
grep -q '1 jobs recovered' "$log" || { echo "chaos-smoke: no recovery line:"; cat "$log"; exit 1; }

state=""
for _ in $(seq 1 600); do
    curl -s "$base/jobs/$id" >"$workdir/status"
    state=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$workdir/status" | head -n 1)
    case "$state" in done|failed|canceled) break ;; esac
    sleep 0.1
done
[ "$state" = done ] || { echo "chaos-smoke: recovered job ended '$state':"; cat "$workdir/status"; exit 1; }
grep -q '"replayed": true' "$workdir/status" || { echo "chaos-smoke: job not marked replayed:"; cat "$workdir/status"; exit 1; }

code=$(curl -s -o "$workdir/result" -w '%{http_code}' "$base/jobs/$id/result")
[ "$code" = 200 ] || { echo "chaos-smoke: result returned $code:"; cat "$workdir/result"; exit 1; }
grep -q '"tables"' "$workdir/result" || { echo "chaos-smoke: result missing tables:"; cat "$workdir/result"; exit 1; }

curl -s "$base/metrics" >"$workdir/metrics"
grep -q '"jobs_replayed": 1' "$workdir/metrics" || { echo "chaos-smoke: metrics missing replay count:"; cat "$workdir/metrics"; exit 1; }
echo "chaos-smoke: job $id recovered and completed"

kill -TERM "$pid"
wait "$pid" || { echo "chaos-smoke: gpsd exited non-zero after SIGTERM:"; cat "$log"; exit 1; }
pid=""
grep -q 'drained cleanly' "$log" || { echo "chaos-smoke: no clean drain:"; cat "$log"; exit 1; }
echo "chaos-smoke: PASS"
