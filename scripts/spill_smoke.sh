#!/bin/sh
# spill-smoke: end-to-end check of the trace spill tier through the CLI.
# Runs a small figure with a trace budget far below the compressed footprint
# of any quick trace, so every cached trace is forced out to the spill file
# and read back block-by-block during replay, then asserts from the JSON
# report that the spill path actually ran: spills recorded, blocks read back,
# and the compressed cache accounting smaller than the logical stream.
set -eu

out="${TMPDIR:-/tmp}/gpsbench-spill-smoke.json"
rm -f "$out"

go run ./cmd/gpsbench -fig 9 -iters 2 -parallel 1 -trace-budget 16384 -json "$out" >/dev/null

go run ./cmd/reportlint -spill "$out"

rm -f "$out"
echo "spill-smoke: ok"
