#!/bin/sh
# cluster_smoke.sh: end-to-end smoke test of gpsd cluster mode.
#
# Boots a 3-node local cluster on fixed loopback ports, then checks the
# cluster invariants end to end with curl and gpsctl:
#
#   1. a spec submitted through any node lands on its ring owner (job IDs
#      carry the owner's node prefix) and the same spec submitted through a
#      second node coalesces onto the same job — the engine runs once;
#   2. the finished report is byte-identical no matter which node serves it
#      (owner directly, the others by proxy);
#   3. SIGKILL of an owner mid-job is survivable: the surviving nodes keep
#      serving, a re-submit of the dead owner's spec re-routes to a live
#      node, and restarting the owner on its journal replays the orphaned
#      job to completion under its original ID.
#
# Needs only a POSIX shell and curl.
set -eu

workdir=$(mktemp -d)
bin="$workdir/gpsd"
ctl="$workdir/gpsctl"

# Fixed ports (the peer list must be known before any node starts). Derived
# from the PID to avoid collisions between concurrent checkouts.
p1=$((21000 + $$ % 10000))
p2=$((p1 + 1))
p3=$((p1 + 2))
peers="n1=http://127.0.0.1:$p1,n2=http://127.0.0.1:$p2,n3=http://127.0.0.1:$p3"

pid1="" pid2="" pid3=""

cleanup() {
    for p in "$pid1" "$pid2" "$pid3"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$bin" ./cmd/gpsd
go build -o "$ctl" ./cmd/gpsctl

# start_node <n> <port>: boot node n$n and wait for its listen line.
start_node() {
    n=$1 port=$2
    : >"$workdir/n$n.log"
    # Stealing is off so the exactly-once accounting below is attributable:
    # a stolen job legitimately counts one completion on the victim and one
    # execution on the thief, which would make the per-node deltas ambiguous.
    "$bin" -addr "127.0.0.1:$port" -node-id "n$n" -peers "$peers" \
        -workers 1 -queue 8 -journal "$workdir/n$n.journal" \
        -probe-interval 200ms -steal-interval -1s >"$workdir/n$n.log" 2>&1 &
    eval "pid$n=\$!"
    for _ in $(seq 1 50); do
        grep -q "listening on" "$workdir/n$n.log" && return 0
        eval "kill -0 \$pid$n" 2>/dev/null || break
        sleep 0.1
    done
    echo "cluster-smoke: node n$n failed to start:"
    cat "$workdir/n$n.log"
    exit 1
}

base_of() {
    case "$1" in
    n1) echo "http://127.0.0.1:$p1" ;;
    n2) echo "http://127.0.0.1:$p2" ;;
    n3) echo "http://127.0.0.1:$p3" ;;
    esac
}

# poll_done <base> <id>: wait until the job is terminal and assert done.
poll_done() {
    state=""
    for _ in $(seq 1 600); do
        curl -s "$1/v1/jobs/$2" >"$workdir/status" || true
        state=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$workdir/status" | head -n 1)
        case "$state" in done | failed | canceled) break ;; esac
        sleep 0.1
    done
    [ "$state" = done ] || {
        echo "cluster-smoke: job $2 ended '$state' (via $1):"
        cat "$workdir/status"
        exit 1
    }
}

start_node 1 "$p1"
start_node 2 "$p2"
start_node 3 "$p3"
echo "cluster-smoke: 3 nodes up on ports $p1/$p2/$p3"

# Healthz must show cluster identity and (after the first probe sweep) all
# peers alive.
sleep 0.5
curl -s "$(base_of n1)/v1/healthz" >"$workdir/hz"
grep -q '"node_id": "n1"' "$workdir/hz" || { echo "cluster-smoke: healthz missing node_id:"; cat "$workdir/hz"; exit 1; }
grep -q '"role": "cluster"' "$workdir/hz" || { echo "cluster-smoke: healthz missing cluster role:"; cat "$workdir/hz"; exit 1; }
grep -q '"peers_alive": 2' "$workdir/hz" || { echo "cluster-smoke: expected 2 live peers:"; cat "$workdir/hz"; exit 1; }

# --- 1: ownership routing + cross-node coalescing -------------------------
specA='{"type":"matrix","iterations":2,"cells":[{"app":"jacobi","paradigm":"GPS","gpus":2,"fabric":"pcie4"}]}'
code=$(curl -s -o "$workdir/subA" -w '%{http_code}' -d "$specA" "$(base_of n1)/v1/jobs")
[ "$code" = 202 ] || { echo "cluster-smoke: submit A returned $code:"; cat "$workdir/subA"; exit 1; }
idA=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/subA" | head -n 1)
ownerA=${idA%%-j-*}
[ -n "$idA" ] && [ "$ownerA" != "$idA" ] || { echo "cluster-smoke: job id '$idA' lacks a node prefix"; exit 1; }
echo "cluster-smoke: spec A owned by $ownerA (job $idA, submitted via n1)"

# The same spec through a different node must land on the same job.
other=n2
[ "$ownerA" = n2 ] && other=n3
# 202 if it raced in before the owner started the job, 200 once coalesced
# or answered from cache — never a second execution.
code=$(curl -s -o "$workdir/subA2" -w '%{http_code}' -d "$specA" "$(base_of $other)/v1/jobs")
case "$code" in 200 | 202) ;; *) echo "cluster-smoke: re-submit A via $other returned $code"; cat "$workdir/subA2"; exit 1 ;; esac
grep -Eq '"outcome": "(coalesced|cached)"' "$workdir/subA2" || {
    echo "cluster-smoke: duplicate submit was not coalesced:"
    cat "$workdir/subA2"
    exit 1
}
idA2=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/subA2" | head -n 1)
[ "$idA2" = "$idA" ] || {
    echo "cluster-smoke: duplicate submit got a different job ($idA2 != $idA)"
    exit 1
}
echo "cluster-smoke: duplicate submit via $other coalesced onto $idA"

# --- 2: byte-identical results from every node ----------------------------
poll_done "$(base_of n3)" "$idA" # poll via a proxy path on purpose
for n in n1 n2 n3; do
    code=$(curl -s -o "$workdir/resA.$n" -w '%{http_code}' "$(base_of $n)/v1/jobs/$idA/result")
    [ "$code" = 200 ] || { echo "cluster-smoke: result from $n returned $code"; exit 1; }
done
cmp -s "$workdir/resA.n1" "$workdir/resA.n2" || { echo "cluster-smoke: n1/n2 results differ"; exit 1; }
cmp -s "$workdir/resA.n1" "$workdir/resA.n3" || { echo "cluster-smoke: n1/n3 results differ"; exit 1; }
grep -q '"tables"' "$workdir/resA.n1" || { echo "cluster-smoke: result missing tables"; exit 1; }
echo "cluster-smoke: result for $idA byte-identical from all 3 nodes"

# The gpsctl CLI must see the same state through any node.
"$ctl" -addr "$(base_of n2)" status "$idA" >"$workdir/ctl.status"
grep -q '"state": "done"' "$workdir/ctl.status" || { echo "cluster-smoke: gpsctl status wrong:"; cat "$workdir/ctl.status"; exit 1; }

# --- 3: permanent kill mid-queue; successor takeover ----------------------
# Submit a batch of distinct specs, SIGKILL the owner of the first one, and
# never restart it. Every accepted job — the dead node's included — must
# reach done on a survivor, with byte-identical results from both survivors
# and no double execution (summed engine-run deltas match the batch size).

# done_count <node>: the node's completed-job counter from the Prometheus
# exposition (the engine-run proxy: every execution ends in exactly one
# done/failed/canceled transition, and this batch only ever completes).
done_count() {
    dc=$(curl -s "$(base_of "$1")/metrics" |
        sed -n 's/^gpsd_jobs_total{event="done"} \([0-9][0-9]*\).*/\1/p' | head -n 1)
    echo "${dc:-0}"
}

pre_n1=$(done_count n1) pre_n2=$(done_count n2) pre_n3=$(done_count n3)

ids=""
for i in 1 2 3 4 5; do
    specB="{\"type\":\"matrix\",\"iterations\":2,\"seed\":$i,\"cells\":[{\"app\":\"diffusion\",\"paradigm\":\"GPS\",\"gpus\":4,\"fabric\":\"nvswitch\"}]}"
    code=$(curl -s -o "$workdir/subB.$i" -w '%{http_code}' -d "$specB" "$(base_of n1)/v1/jobs")
    [ "$code" = 202 ] || { echo "cluster-smoke: submit B$i returned $code"; cat "$workdir/subB.$i"; exit 1; }
    ids="$ids $(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/subB.$i" | head -n 1)"
done
victim=$(echo "$ids" | awk '{print $1}')
victim=${victim%%-j-*}
echo "cluster-smoke: batch accepted ($ids); killing $victim with SIGKILL, never to return"

eval "opid=\$pid$(echo "$victim" | tr -d n)"
kill -9 "$opid"
wait "$opid" 2>/dev/null || true
eval "pid$(echo "$victim" | tr -d n)=''"

surv1="" surv2=""
for n in n1 n2 n3; do
    [ "$n" = "$victim" ] && continue
    [ -z "$surv1" ] && surv1=$n || surv2=$n
done

# One dropped probe must not flap; the suspicion threshold (3 consecutive
# failures at 200ms probes) declares death within a couple of seconds.
deadline=$(($(date +%s) + 15))
while :; do
    curl -s "$(base_of $surv1)/v1/healthz" >"$workdir/hz1" || true
    grep -q '"peers_alive": 1' "$workdir/hz1" && break
    [ "$(date +%s)" -lt "$deadline" ] || {
        echo "cluster-smoke: $surv1 never declared $victim dead:"
        cat "$workdir/hz1"
        exit 1
    }
    sleep 0.2
done
echo "cluster-smoke: $surv1 declared $victim dead"

# Every accepted job finishes, the dead node's under their ORIGINAL IDs via
# takeover; their results read byte-identical through both survivors.
promoted=0
for id in $ids; do
    poll_done "$(base_of $surv1)" "$id"
    if [ "${id%%-j-*}" = "$victim" ]; then
        promoted=$((promoted + 1))
        grep -q "\"adopted_from\": \"$victim\"" "$workdir/status" || {
            echo "cluster-smoke: takeover job $id not marked adopted:"
            cat "$workdir/status"
            exit 1
        }
    fi
    for n in $surv1 $surv2; do
        code=$(curl -s -o "$workdir/res.$n" -w '%{http_code}' "$(base_of $n)/v1/jobs/$id/result")
        [ "$code" = 200 ] || { echo "cluster-smoke: result for $id from $n returned $code"; exit 1; }
    done
    cmp -s "$workdir/res.$surv1" "$workdir/res.$surv2" || {
        echo "cluster-smoke: $surv1/$surv2 results differ for $id"
        exit 1
    }
done
[ "$promoted" -ge 1 ] || { echo "cluster-smoke: no job was owned by the victim; batch too small"; exit 1; }
echo "cluster-smoke: all 5 jobs done; $promoted promoted from $victim, results byte-identical"

# No double execution: the survivors' completed-job deltas sum to exactly
# the batch size (the victim's partial run died with it).
eval "pre1=\$pre_$surv1" && eval "pre2=\$pre_$surv2"
d1=$(($(done_count $surv1) - pre1))
d2=$(($(done_count $surv2) - pre2))
[ $((d1 + d2)) -eq 5 ] || {
    echo "cluster-smoke: survivors completed $d1+$d2 jobs for a batch of 5 (double execution?)"
    exit 1
}

# The takeover shows up in the successor's metrics, and a fresh spec routed
# at the dead owner lands on a live node.
curl -s "$(base_of $surv1)/metrics" >"$workdir/m1"
curl -s "$(base_of $surv2)/metrics" >"$workdir/m2"
grep -h '^gpsd_cluster_takeover_jobs_total' "$workdir/m1" "$workdir/m2" | grep -qv ' 0$' || {
    echo "cluster-smoke: no survivor reports takeover jobs"
    exit 1
}
specC='{"type":"matrix","iterations":2,"seed":99,"cells":[{"app":"jacobi","paradigm":"GPS","gpus":2,"fabric":"pcie5"}]}'
code=$(curl -s -o "$workdir/subC" -w '%{http_code}' -d "$specC" "$(base_of $surv1)/v1/jobs")
[ "$code" = 202 ] || { echo "cluster-smoke: post-kill submit returned $code"; cat "$workdir/subC"; exit 1; }
idC=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/subC" | head -n 1)
[ "${idC%%-j-*}" != "$victim" ] || { echo "cluster-smoke: fresh spec still routed to dead $victim ($idC)"; exit 1; }
poll_done "$(base_of $surv2)" "$idC"
echo "cluster-smoke: post-kill submit re-routed to ${idC%%-j-*} and completed"

# The operator view agrees: gpsctl cluster on a survivor shows the death
# and the takeover counters.
"$ctl" -addr "$(base_of $surv1)" cluster >"$workdir/ctl.cluster"
grep -q "peers: 1/2 alive" "$workdir/ctl.cluster" || { echo "cluster-smoke: gpsctl cluster wrong peers:"; cat "$workdir/ctl.cluster"; exit 1; }
grep -q "takeovers:" "$workdir/ctl.cluster" || { echo "cluster-smoke: gpsctl cluster missing takeovers:"; cat "$workdir/ctl.cluster"; exit 1; }

# --- 4: resurrection — the victim returns and reconciles ------------------
# The permanent-kill checks are all settled; now bring the victim back on
# its journal. Its replayed jobs were adopted elsewhere, so the resurrection
# handshake must land the successor's results without re-running anything:
# reads through the restarted node converge on the same bytes.
start_node "$(echo "$victim" | tr -d n)" "$(base_of "$victim" | sed 's/.*://')"
for id in $ids; do
    [ "${id%%-j-*}" = "$victim" ] || continue
    poll_done "$(base_of "$victim")" "$id"
    code=$(curl -s -o "$workdir/res.back" -w '%{http_code}' "$(base_of "$victim")/v1/jobs/$id/result")
    [ "$code" = 200 ] || { echo "cluster-smoke: resurrected $victim result for $id returned $code"; exit 1; }
    curl -s -o "$workdir/res.surv" "$(base_of $surv1)/v1/jobs/$id/result"
    cmp -s "$workdir/res.back" "$workdir/res.surv" || {
        echo "cluster-smoke: resurrected $victim disagrees with $surv1 on $id"
        exit 1
    }
done
echo "cluster-smoke: resurrected $victim reconciled its jobs against the successor"

echo "cluster-smoke: PASS"
