#!/bin/sh
# cluster_smoke.sh: end-to-end smoke test of gpsd cluster mode.
#
# Boots a 3-node local cluster on fixed loopback ports, then checks the
# cluster invariants end to end with curl and gpsctl:
#
#   1. a spec submitted through any node lands on its ring owner (job IDs
#      carry the owner's node prefix) and the same spec submitted through a
#      second node coalesces onto the same job — the engine runs once;
#   2. the finished report is byte-identical no matter which node serves it
#      (owner directly, the others by proxy);
#   3. SIGKILL of an owner mid-job is survivable: the surviving nodes keep
#      serving, a re-submit of the dead owner's spec re-routes to a live
#      node, and restarting the owner on its journal replays the orphaned
#      job to completion under its original ID.
#
# Needs only a POSIX shell and curl.
set -eu

workdir=$(mktemp -d)
bin="$workdir/gpsd"
ctl="$workdir/gpsctl"

# Fixed ports (the peer list must be known before any node starts). Derived
# from the PID to avoid collisions between concurrent checkouts.
p1=$((21000 + $$ % 10000))
p2=$((p1 + 1))
p3=$((p1 + 2))
peers="n1=http://127.0.0.1:$p1,n2=http://127.0.0.1:$p2,n3=http://127.0.0.1:$p3"

pid1="" pid2="" pid3=""

cleanup() {
    for p in "$pid1" "$pid2" "$pid3"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$bin" ./cmd/gpsd
go build -o "$ctl" ./cmd/gpsctl

# start_node <n> <port>: boot node n$n and wait for its listen line.
start_node() {
    n=$1 port=$2
    : >"$workdir/n$n.log"
    "$bin" -addr "127.0.0.1:$port" -node-id "n$n" -peers "$peers" \
        -workers 1 -queue 8 -journal "$workdir/n$n.journal" \
        -probe-interval 200ms >"$workdir/n$n.log" 2>&1 &
    eval "pid$n=\$!"
    for _ in $(seq 1 50); do
        grep -q "listening on" "$workdir/n$n.log" && return 0
        eval "kill -0 \$pid$n" 2>/dev/null || break
        sleep 0.1
    done
    echo "cluster-smoke: node n$n failed to start:"
    cat "$workdir/n$n.log"
    exit 1
}

base_of() {
    case "$1" in
    n1) echo "http://127.0.0.1:$p1" ;;
    n2) echo "http://127.0.0.1:$p2" ;;
    n3) echo "http://127.0.0.1:$p3" ;;
    esac
}

# poll_done <base> <id>: wait until the job is terminal and assert done.
poll_done() {
    state=""
    for _ in $(seq 1 600); do
        curl -s "$1/v1/jobs/$2" >"$workdir/status" || true
        state=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$workdir/status" | head -n 1)
        case "$state" in done | failed | canceled) break ;; esac
        sleep 0.1
    done
    [ "$state" = done ] || {
        echo "cluster-smoke: job $2 ended '$state' (via $1):"
        cat "$workdir/status"
        exit 1
    }
}

start_node 1 "$p1"
start_node 2 "$p2"
start_node 3 "$p3"
echo "cluster-smoke: 3 nodes up on ports $p1/$p2/$p3"

# Healthz must show cluster identity and (after the first probe sweep) all
# peers alive.
sleep 0.5
curl -s "$(base_of n1)/v1/healthz" >"$workdir/hz"
grep -q '"node_id": "n1"' "$workdir/hz" || { echo "cluster-smoke: healthz missing node_id:"; cat "$workdir/hz"; exit 1; }
grep -q '"role": "cluster"' "$workdir/hz" || { echo "cluster-smoke: healthz missing cluster role:"; cat "$workdir/hz"; exit 1; }
grep -q '"peers_alive": 2' "$workdir/hz" || { echo "cluster-smoke: expected 2 live peers:"; cat "$workdir/hz"; exit 1; }

# --- 1: ownership routing + cross-node coalescing -------------------------
specA='{"type":"matrix","iterations":2,"cells":[{"app":"jacobi","paradigm":"GPS","gpus":2,"fabric":"pcie4"}]}'
code=$(curl -s -o "$workdir/subA" -w '%{http_code}' -d "$specA" "$(base_of n1)/v1/jobs")
[ "$code" = 202 ] || { echo "cluster-smoke: submit A returned $code:"; cat "$workdir/subA"; exit 1; }
idA=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/subA" | head -n 1)
ownerA=${idA%%-j-*}
[ -n "$idA" ] && [ "$ownerA" != "$idA" ] || { echo "cluster-smoke: job id '$idA' lacks a node prefix"; exit 1; }
echo "cluster-smoke: spec A owned by $ownerA (job $idA, submitted via n1)"

# The same spec through a different node must land on the same job.
other=n2
[ "$ownerA" = n2 ] && other=n3
# 202 if it raced in before the owner started the job, 200 once coalesced
# or answered from cache — never a second execution.
code=$(curl -s -o "$workdir/subA2" -w '%{http_code}' -d "$specA" "$(base_of $other)/v1/jobs")
case "$code" in 200 | 202) ;; *) echo "cluster-smoke: re-submit A via $other returned $code"; cat "$workdir/subA2"; exit 1 ;; esac
grep -Eq '"outcome": "(coalesced|cached)"' "$workdir/subA2" || {
    echo "cluster-smoke: duplicate submit was not coalesced:"
    cat "$workdir/subA2"
    exit 1
}
idA2=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/subA2" | head -n 1)
[ "$idA2" = "$idA" ] || {
    echo "cluster-smoke: duplicate submit got a different job ($idA2 != $idA)"
    exit 1
}
echo "cluster-smoke: duplicate submit via $other coalesced onto $idA"

# --- 2: byte-identical results from every node ----------------------------
poll_done "$(base_of n3)" "$idA" # poll via a proxy path on purpose
for n in n1 n2 n3; do
    code=$(curl -s -o "$workdir/resA.$n" -w '%{http_code}' "$(base_of $n)/v1/jobs/$idA/result")
    [ "$code" = 200 ] || { echo "cluster-smoke: result from $n returned $code"; exit 1; }
done
cmp -s "$workdir/resA.n1" "$workdir/resA.n2" || { echo "cluster-smoke: n1/n2 results differ"; exit 1; }
cmp -s "$workdir/resA.n1" "$workdir/resA.n3" || { echo "cluster-smoke: n1/n3 results differ"; exit 1; }
grep -q '"tables"' "$workdir/resA.n1" || { echo "cluster-smoke: result missing tables"; exit 1; }
echo "cluster-smoke: result for $idA byte-identical from all 3 nodes"

# The gpsctl CLI must see the same state through any node.
"$ctl" -addr "$(base_of n2)" status "$idA" >"$workdir/ctl.status"
grep -q '"state": "done"' "$workdir/ctl.status" || { echo "cluster-smoke: gpsctl status wrong:"; cat "$workdir/ctl.status"; exit 1; }

# --- 3: SIGKILL the owner mid-job; re-route + journal replay --------------
specB='{"type":"matrix","iterations":2,"cells":[{"app":"diffusion","paradigm":"GPS","gpus":4,"fabric":"nvswitch"}]}'
code=$(curl -s -o "$workdir/subB" -w '%{http_code}' -d "$specB" "$(base_of n1)/v1/jobs")
[ "$code" = 202 ] || { echo "cluster-smoke: submit B returned $code"; cat "$workdir/subB"; exit 1; }
idB=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/subB" | head -n 1)
ownerB=${idB%%-j-*}
echo "cluster-smoke: spec B owned by $ownerB (job $idB); killing $ownerB with SIGKILL"

eval "opid=\$pid$(echo "$ownerB" | tr -d n)"
kill -9 "$opid"
wait "$opid" 2>/dev/null || true
eval "pid$(echo "$ownerB" | tr -d n)=''"

# A survivor re-routes the dead owner's spec to a live node and completes it.
surv=n1
[ "$ownerB" = n1 ] && surv=n2
code=$(curl -s -o "$workdir/subB2" -w '%{http_code}' -d "$specB" "$(base_of $surv)/v1/jobs")
[ "$code" = 202 ] || { echo "cluster-smoke: re-route submit via $surv returned $code"; cat "$workdir/subB2"; exit 1; }
idB2=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/subB2" | head -n 1)
[ "${idB2%%-j-*}" != "$ownerB" ] || { echo "cluster-smoke: re-route still assigned dead owner ($idB2)"; exit 1; }
poll_done "$(base_of $surv)" "$idB2"
echo "cluster-smoke: re-routed job $idB2 completed while $ownerB was down"

# Restart the dead owner on its journal: the orphaned job replays to
# completion under its original ID.
start_node "$(echo "$ownerB" | tr -d n)" "$(base_of "$ownerB" | sed 's/.*://')"
grep -q 'jobs recovered' "$workdir/$ownerB.log" || { echo "cluster-smoke: no recovery line:"; cat "$workdir/$ownerB.log"; exit 1; }
poll_done "$(base_of $surv)" "$idB" # proxied read through a survivor
echo "cluster-smoke: journal replay completed $idB on restarted $ownerB"

for n in n1 n2 n3; do
    code=$(curl -s -o "$workdir/resB.$n" -w '%{http_code}' "$(base_of $n)/v1/jobs/$idB/result")
    [ "$code" = 200 ] || { echo "cluster-smoke: post-restart result from $n returned $code"; exit 1; }
done
cmp -s "$workdir/resB.n1" "$workdir/resB.n2" || { echo "cluster-smoke: post-restart n1/n2 results differ"; exit 1; }
cmp -s "$workdir/resB.n1" "$workdir/resB.n3" || { echo "cluster-smoke: post-restart n1/n3 results differ"; exit 1; }

echo "cluster-smoke: PASS"
