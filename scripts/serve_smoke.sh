#!/bin/sh
# serve_smoke.sh: end-to-end smoke test of the gpsd daemon over its REST API.
#
# Builds gpsd, starts it on an ephemeral port, submits one small matrix job,
# polls it to completion, asserts the result endpoint answers 200 with the
# shared report schema, then SIGTERMs the daemon and checks a clean drain.
# Needs only a POSIX shell and curl; exits non-zero on any failure.
set -eu

workdir=$(mktemp -d)
bin="$workdir/gpsd"
log="$workdir/gpsd.log"
pid=""

cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$bin" ./cmd/gpsd

"$bin" -addr 127.0.0.1:0 -workers 1 -queue 4 >"$log" 2>&1 &
pid=$!

# The daemon prints "gpsd: listening on HOST:PORT (...)" once the socket is
# bound; parse the ephemeral port out of that line.
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^gpsd: listening on \([^ ]*\) .*/\1/p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: gpsd died:"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: no listen line in gpsd output"; cat "$log"; exit 1; }
base="http://$addr/v1"
echo "serve-smoke: gpsd at $base"

code=$(curl -s -o "$workdir/health" -w '%{http_code}' "$base/healthz")
[ "$code" = 200 ] || { echo "serve-smoke: healthz returned $code"; exit 1; }

spec='{"type":"matrix","iterations":1,"cells":[{"app":"jacobi","paradigm":"GPS","gpus":2,"fabric":"pcie4"}]}'
code=$(curl -s -o "$workdir/submit" -w '%{http_code}' -d "$spec" "$base/jobs")
[ "$code" = 202 ] || { echo "serve-smoke: submit returned $code:"; cat "$workdir/submit"; exit 1; }
id=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/submit" | head -n 1)
[ -n "$id" ] || { echo "serve-smoke: no job id in submit response"; cat "$workdir/submit"; exit 1; }
echo "serve-smoke: submitted $id"

state=""
for _ in $(seq 1 600); do
    curl -s "$base/jobs/$id" >"$workdir/status"
    state=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$workdir/status" | head -n 1)
    case "$state" in done|failed|canceled) break ;; esac
    sleep 0.1
done
[ "$state" = done ] || { echo "serve-smoke: job ended '$state':"; cat "$workdir/status"; exit 1; }

code=$(curl -s -o "$workdir/result" -w '%{http_code}' "$base/jobs/$id/result")
[ "$code" = 200 ] || { echo "serve-smoke: result returned $code:"; cat "$workdir/result"; exit 1; }
grep -q '"tables"' "$workdir/result" || { echo "serve-smoke: result missing tables:"; cat "$workdir/result"; exit 1; }
echo "serve-smoke: result OK ($(wc -c <"$workdir/result") bytes)"

kill -TERM "$pid"
wait "$pid" || { echo "serve-smoke: gpsd exited non-zero after SIGTERM:"; cat "$log"; exit 1; }
pid=""
grep -q 'drained cleanly' "$log" || { echo "serve-smoke: no clean drain:"; cat "$log"; exit 1; }
echo "serve-smoke: PASS"
