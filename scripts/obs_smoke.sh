#!/bin/sh
# obs-smoke: end-to-end check of the observability layer. Runs a small
# gpsbench matrix with -trace-out and validates the emitted Perfetto trace
# with tracelint: valid JSON, balanced B/E events, spans present and nested
# for every category down to the engine phases.
set -eu

trace="${TMPDIR:-/tmp}/gpsbench-obs-smoke.trace.json"
rm -f "$trace"

go run ./cmd/gpsbench -fig 8 -iters 2 -trace-out "$trace" >/dev/null
go run ./cmd/tracelint "$trace"

rm -f "$trace"
echo "obs-smoke: ok"
