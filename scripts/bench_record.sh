#!/bin/sh
# bench_record.sh: record the perf trajectory of the full experiment suite.
#
# Builds gpsbench, runs the complete figure/table matrix single-threaded
# (-parallel 1, so the number measures the hot path rather than the worker
# count), and writes BENCH_<n>.json at the repo root: wall clock per figure,
# headline Section 7.1/7.3 metrics, and cache statistics. Compare against
# the previous BENCH_*.json to see what a PR bought.
#
# Usage: scripts/bench_record.sh [suffix]   (default suffix: 4)
set -eu

suffix=${1:-4}
out="BENCH_${suffix}.json"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

go build -o "$workdir/gpsbench" ./cmd/gpsbench
"$workdir/gpsbench" -all -parallel 1 -json "$out" >"$workdir/stdout.txt"

grep '^done in' "$workdir/stdout.txt" || true
echo "wrote $out"
