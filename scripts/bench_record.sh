#!/bin/sh
# bench_record.sh: record the perf trajectory of the full experiment suite.
#
# Builds gpsbench, runs the complete figure/table matrix twice, and writes
# two reports at the repo root:
#
#   BENCH_<n>.json           -parallel 1: single-threaded hot-path number
#   BENCH_<n>_parallel.json  -parallel 0 -shards 4: the machine-saturating
#                            configuration (cell workers compose with
#                            replay shards, capped at GOMAXPROCS)
#
# Compare against the previous BENCH_*.json to see what a PR bought.
#
# Usage: scripts/bench_record.sh [suffix]   (default suffix: 6)
set -eu

suffix=${1:-6}
out="BENCH_${suffix}.json"
outp="BENCH_${suffix}_parallel.json"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT INT TERM

go build -o "$workdir/gpsbench" ./cmd/gpsbench
"$workdir/gpsbench" -all -parallel 1 -json "$out" >"$workdir/stdout.txt"
grep '^done in' "$workdir/stdout.txt" || true
echo "wrote $out"

"$workdir/gpsbench" -all -parallel 0 -shards 4 -json "$outp" >"$workdir/stdout_parallel.txt"
grep '^done in' "$workdir/stdout_parallel.txt" || true
echo "wrote $outp"
