#!/bin/sh
# trace_cluster_smoke.sh: end-to-end smoke test of cluster-wide distributed
# tracing.
#
# Boots a 3-node local cluster with per-node trace directories and work
# stealing enabled, piles a batch of jobs onto one node's single worker (the
# loop-guard header keeps them local, so the idle peers steal the queue),
# then validates the per-node Perfetto trace files as ONE cluster:
#
#   1. every file is structurally valid (balanced events, nesting);
#   2. every parent_span_id resolves to a span_id within its trace_id group
#      across files, and every trace has a root span;
#   3. at least one trace spans 2+ nodes — the victim's handoff span and the
#      thief's execution joined by the identity minted at submit.
#
# tracelint -cluster -cross is the gate: exit 1 if any linkage is dangling
# or no trace crossed a node boundary. Needs only a POSIX shell and curl.
set -eu

workdir=$(mktemp -d)
bin="$workdir/gpsd"
lint="$workdir/tracelint"

p1=$((23000 + $$ % 10000))
p2=$((p1 + 1))
p3=$((p1 + 2))
peers="n1=http://127.0.0.1:$p1,n2=http://127.0.0.1:$p2,n3=http://127.0.0.1:$p3"

pid1="" pid2="" pid3=""

cleanup() {
    for p in "$pid1" "$pid2" "$pid3"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$bin" ./cmd/gpsd
go build -o "$lint" ./cmd/tracelint

start_node() {
    n=$1 port=$2
    : >"$workdir/n$n.log"
    mkdir -p "$workdir/traces/n$n"
    "$bin" -addr "127.0.0.1:$port" -node-id "n$n" -peers "$peers" \
        -workers 1 -queue 32 -journal "$workdir/n$n.journal" \
        -trace-dir "$workdir/traces/n$n" \
        -probe-interval 150ms -steal-interval 100ms >"$workdir/n$n.log" 2>&1 &
    eval "pid$n=\$!"
    for _ in $(seq 1 50); do
        grep -q "listening on" "$workdir/n$n.log" && return 0
        eval "kill -0 \$pid$n" 2>/dev/null || break
        sleep 0.1
    done
    echo "trace-cluster-smoke: node n$n failed to start:"
    cat "$workdir/n$n.log"
    exit 1
}

start_node 1 "$p1"
start_node 2 "$p2"
start_node 3 "$p3"
echo "trace-cluster-smoke: 3 nodes up on ports $p1/$p2/$p3"
sleep 0.5 # first probe sweep: thieves need a liveness view before stealing

# steals_of <port>: the node's thief-side steal counter.
steals_of() {
    s=$(curl -s "http://127.0.0.1:$1/metrics" |
        sed -n 's/^gpsd_cluster_steals_total{role="thief"} \([0-9][0-9]*\).*/\1/p' | head -n 1)
    echo "${s:-0}"
}

# poll_done <id>: wait until the job is terminal and assert done (via n1,
# which proxies or answers locally as ownership dictates).
poll_done() {
    state=""
    for _ in $(seq 1 600); do
        curl -s "http://127.0.0.1:$p1/v1/jobs/$1" >"$workdir/status" || true
        state=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$workdir/status" | head -n 1)
        case "$state" in done | failed | canceled) break ;; esac
        sleep 0.1
    done
    [ "$state" = done ] || {
        echo "trace-cluster-smoke: job $1 ended '$state':"
        cat "$workdir/status"
        exit 1
    }
}

# Pile batches onto n1's single worker until a peer steals. The loop-guard
# header forces local handling, so every job queues on n1 while n2/n3 idle —
# the steal loop moves the overflow within a couple of 100ms ticks.
ids=""
round=0
while :; do
    round=$((round + 1))
    [ "$round" -le 5 ] || { echo "trace-cluster-smoke: no steal after $((round - 1)) rounds"; exit 1; }
    for i in $(seq 1 6); do
        seed=$((round * 100 + i))
        spec="{\"type\":\"matrix\",\"iterations\":4,\"seed\":$seed,\"cells\":[{\"app\":\"jacobi\",\"paradigm\":\"GPS\",\"gpus\":4,\"fabric\":\"nvswitch\"}]}"
        code=$(curl -s -o "$workdir/sub" -w '%{http_code}' \
            -H 'X-GPS-Forwarded-From: smoke' -d "$spec" "http://127.0.0.1:$p1/v1/jobs")
        [ "$code" = 202 ] || { echo "trace-cluster-smoke: submit returned $code"; cat "$workdir/sub"; exit 1; }
        ids="$ids $(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$workdir/sub" | head -n 1)"
    done
    for id in $ids; do
        poll_done "$id"
    done
    stolen=$(($(steals_of "$p2") + $(steals_of "$p3")))
    [ "$stolen" -gt 0 ] && break
    echo "trace-cluster-smoke: round $round finished before any steal; queuing another batch"
done
echo "trace-cluster-smoke: $stolen job(s) stolen across $round round(s); all jobs done"

# Give the asynchronous trace writers (the victim's handoff flush, the
# thieves' tracer close) a beat to land their files.
sleep 1

files=$(find "$workdir/traces" -name '*.trace.json')
count=$(echo "$files" | wc -l)
[ "$count" -ge 2 ] || { echo "trace-cluster-smoke: only $count trace files written"; exit 1; }

# The gate: every per-node file valid, every cross-file parent link resolved,
# and at least one trace spanning 2+ nodes (-cross exits 1 otherwise).
# shellcheck disable=SC2086
"$lint" -cluster -cross -merge "$workdir/merged.trace.json" $files >"$workdir/lint.out" || {
    echo "trace-cluster-smoke: tracelint -cluster failed:"
    cat "$workdir/lint.out"
    exit 1
}
cat "$workdir/lint.out"
grep -q '"ph"' "$workdir/merged.trace.json" || {
    echo "trace-cluster-smoke: merged trace is empty"
    exit 1
}

echo "trace-cluster-smoke: PASS"
