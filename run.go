package gps

import (
	"fmt"
	"sort"

	"gps/internal/engine"
	"gps/internal/gpuconf"
	"gps/internal/paradigm"
	"gps/internal/timing"
	"gps/internal/trace"
)

// Result reports one simulated run.
type Result struct {
	// Paradigm and Interconnect echo the configuration.
	Paradigm     Paradigm
	Interconnect Interconnect

	// TotalTime is the simulated end-to-end runtime in seconds, including
	// the profiling window.
	TotalTime float64
	// SteadyTime is the runtime of the phases after TrackingStop — the
	// steady state that long-running applications amortize to. Equal to
	// TotalTime when no tracking window was declared.
	SteadyTime float64

	// InterconnectBytes is the steady-state traffic over the fabric.
	InterconnectBytes uint64
	// PageFaults counts UM page faults across the run.
	PageFaults int

	// SubscriberHistogram maps subscriber count -> GPS pages (GPS runs
	// only).
	SubscriberHistogram map[int]int
	// WriteQueueHitRate is the mean GPS remote write queue hit rate.
	WriteQueueHitRate float64
	// GPSTLBHitRate is the mean GPS-TLB hit rate.
	GPSTLBHitRate float64

	// Breakdown attributes the total time to its causes.
	Breakdown Breakdown
}

// Breakdown attributes simulated time (seconds, summed over phases).
type Breakdown struct {
	// Kernel is time inside kernels (compute/DRAM bound spans).
	Kernel float64
	// Stall is demand-read and fault/shootdown stall time.
	Stall float64
	// PushWait is barrier time spent waiting for proactive pushes to drain.
	PushWait float64
	// Bulk is barrier-window bulk transfer time (memcpy broadcasts,
	// prefetches).
	Bulk float64
	// Overhead is fixed per-phase launch/barrier cost.
	Overhead float64
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s on %s: %.3f ms total (%.3f ms steady), %.2f MB moved, %d faults",
		r.Paradigm, r.Interconnect, r.TotalTime*1e3, r.SteadyTime*1e3,
		float64(r.InterconnectBytes)/1e6, r.PageFaults)
}

// program assembles the System's recorded state into a trace.
func (s *System) program() (*trace.Recorded, error) {
	if len(s.phases) == 0 {
		return nil, fmt.Errorf("gps: no kernels launched")
	}
	if s.tracking {
		return nil, fmt.Errorf("gps: tracking window never closed (call TrackingStop)")
	}
	names := make([]string, 0, len(s.buffers))
	for name := range s.buffers {
		names = append(names, name)
	}
	sort.Strings(names)
	var regions []trace.Region
	var sharedTotal uint64
	for _, name := range names {
		b := s.buffers[name]
		r := trace.Region{Name: b.name, Base: b.base, Size: b.size}
		if b.shared {
			r.Kind = trace.RegionShared
			r.Writers = allGPUList(s.cfg.GPUs)
			r.Readers = allGPUList(s.cfg.GPUs)
			r.ManualSubscribers = b.manual
			sharedTotal += b.size
		} else {
			r.Kind = trace.RegionPrivate
			r.Writers = []int{b.device}
			r.Readers = []int{b.device}
		}
		regions = append(regions, r)
	}
	profile := s.profileEnd
	if profile < 0 {
		profile = 0
	}
	meta := trace.Meta{
		Name:             "user-program",
		NumGPUs:          s.cfg.GPUs,
		Regions:          regions,
		ProfilePhases:    profile,
		WorkingSetPerGPU: sharedTotal / uint64(s.cfg.GPUs),
		L2:               s.cfg.L2,
	}
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	return &trace.Recorded{M: meta, Ph: s.phases}, nil
}

// Run simulates the recorded program under the configured paradigm and
// interconnect. The System can be Run multiple times (also via RunWith) —
// each run replays the same recorded program independently.
func (s *System) Run() (*Result, error) {
	return s.RunWith(s.cfg.Paradigm, s.cfg.Interconnect)
}

// RunWith simulates the recorded program under an explicit paradigm and
// fabric, enabling side-by-side comparisons on one program.
func (s *System) RunWith(p Paradigm, ic Interconnect) (*Result, error) {
	prog, err := s.program()
	if err != nil {
		return nil, err
	}
	s.finished = true

	kind, err := p.kind()
	if err != nil {
		return nil, err
	}
	fab, err := ic.build(s.cfg.GPUs)
	if err != nil {
		return nil, err
	}

	pcfg := paradigm.Config{
		Machine:           gpuconf.Default(),
		PageBytes:         s.cfg.PageBytes,
		WriteQueueEntries: s.cfg.WriteQueueEntries,
		GPSTLBEntries:     s.cfg.GPSTLBEntries,
	}
	model, err := paradigm.New(kind, prog, pcfg)
	if err != nil {
		return nil, err
	}
	res := engine.Run(prog, model)

	tcfg := timing.DefaultConfig(fab)
	if s.cfg.PageBytes != 0 {
		tcfg.PageBytes = s.cfg.PageBytes
	}
	rep := timing.Simulate(res, tcfg)

	out := &Result{
		Paradigm:            p,
		Interconnect:        ic,
		TotalTime:           rep.Total,
		SteadyTime:          rep.SteadyTotal(),
		InterconnectBytes:   res.InterconnectBytes(prog.M.ProfilePhases),
		PageFaults:          res.TotalFaults(),
		SubscriberHistogram: res.SubscriberHist,
	}
	out.WriteQueueHitRate = mean(res.WriteQueueHitRate)
	out.GPSTLBHitRate = mean(res.GPSTLBHitRate)
	out.Breakdown = Breakdown{
		Kernel:   rep.ComputeBound,
		Stall:    rep.StallTime,
		PushWait: rep.PushWait,
		Bulk:     rep.BulkTime,
		Overhead: rep.Overhead,
	}
	return out, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func allGPUList(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
