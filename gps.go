// Package gps is a library-level reproduction of "GPS: A Global
// Publish-Subscribe Model for Multi-GPU Memory Management" (MICRO 2021). It
// simulates multi-GPU systems executing memory-access workloads under seven
// memory-management paradigms — fault-based Unified Memory, Unified Memory
// with expert hints, remote demand loads, bulk-synchronous memcpy
// mirroring, GPS with and without automatic subscription tracking, and an
// infinite-bandwidth upper bound — over PCIe and NVLink-class interconnect
// models.
//
// The programming interface mirrors the paper's Section 4 API: allocate
// buffers in the GPS address space (MallocGPS, the cudaMallocGPS analogue),
// optionally manage subscriptions manually (MallocGPSManual /
// Subscribe / Unsubscribe, the CU_MEM_ADVISE_GPS_* hints), bracket a
// profiling iteration with TrackingStart/TrackingStop
// (cuGPSTrackingStart/Stop), launch kernels phase by phase, and Run the
// whole program through the structural and timing simulators.
//
//	sys, _ := gps.NewSystem(gps.Config{GPUs: 4, Interconnect: gps.PCIe4, Paradigm: gps.ParadigmGPS})
//	buf, _ := sys.MallocGPS("grid", 8<<20)
//	sys.TrackingStart()
//	... build + Launch the first iteration's kernels ...
//	sys.TrackingStop()
//	... launch more iterations ...
//	res, _ := sys.Run()
package gps

import (
	"fmt"

	"gps/internal/interconnect"
	"gps/internal/paradigm"
	"gps/internal/trace"
)

// Paradigm selects the memory-management technique a Run simulates.
type Paradigm int

// The paradigms of the paper's Section 6.
const (
	// ParadigmGPS is the paper's proposal with automatic subscription
	// tracking (the default).
	ParadigmGPS Paradigm = iota
	// ParadigmGPSNoSub is GPS with subscription management disabled:
	// all-to-all replication (the Figure 11 ablation).
	ParadigmGPSNoSub
	// ParadigmUM is baseline Unified Memory with fault-based migration.
	ParadigmUM
	// ParadigmUMHints is Unified Memory with expert placement, accessed-by
	// and prefetch hints.
	ParadigmUMHints
	// ParadigmRDL issues stores locally and loads to the page's last writer.
	ParadigmRDL
	// ParadigmMemcpy mirrors shared data everywhere with bulk-synchronous
	// broadcasts at barriers.
	ParadigmMemcpy
	// ParadigmInfinite elides all transfer costs (upper bound).
	ParadigmInfinite
	// ParadigmGPSUnsubDefault is GPS with unsubscribed-by-default profiling
	// (the Section 3.2 alternative): GPUs subscribe on first read, paying
	// page-population stalls during the profiling window.
	ParadigmGPSUnsubDefault
	// ParadigmMemcpyAsync is the expert pipelined cudaMemcpy baseline of
	// Section 2.1: the same broadcasts as ParadigmMemcpy, double-buffered to
	// overlap with compute.
	ParadigmMemcpyAsync
)

func (p Paradigm) kind() (paradigm.Kind, error) {
	switch p {
	case ParadigmGPS:
		return paradigm.KindGPS, nil
	case ParadigmGPSNoSub:
		return paradigm.KindGPSNoSub, nil
	case ParadigmUM:
		return paradigm.KindUM, nil
	case ParadigmUMHints:
		return paradigm.KindUMHints, nil
	case ParadigmRDL:
		return paradigm.KindRDL, nil
	case ParadigmMemcpy:
		return paradigm.KindMemcpy, nil
	case ParadigmInfinite:
		return paradigm.KindInfinite, nil
	case ParadigmGPSUnsubDefault:
		return paradigm.KindGPSUnsubDefault, nil
	case ParadigmMemcpyAsync:
		return paradigm.KindMemcpyAsync, nil
	}
	return 0, fmt.Errorf("gps: unknown paradigm %d", int(p))
}

// String names the paradigm as the paper's figures do.
func (p Paradigm) String() string {
	if k, err := p.kind(); err == nil {
		return k.String()
	}
	return fmt.Sprintf("Paradigm(%d)", int(p))
}

// Paradigms lists every selectable paradigm in figure order.
func Paradigms() []Paradigm {
	return []Paradigm{ParadigmUM, ParadigmUMHints, ParadigmRDL, ParadigmMemcpy,
		ParadigmMemcpyAsync, ParadigmGPS, ParadigmGPSNoSub, ParadigmGPSUnsubDefault,
		ParadigmInfinite}
}

// Interconnect selects the inter-GPU fabric.
type Interconnect int

// Fabrics evaluated in the paper.
const (
	// PCIe3 through PCIe6 are x16 PCIe trees at 16/32/64/128 GB/s per
	// direction per GPU (PCIe 6.0 is the paper's projection).
	PCIe3 Interconnect = iota
	PCIe4
	PCIe5
	PCIe6
	// NVLinkSwitch is a non-blocking NVSwitch crossbar at NVLink 2 rates.
	NVLinkSwitch
	// InfiniteBW is the ideal fabric: transfers are free.
	InfiniteBW
)

func (i Interconnect) build(gpus int) (*interconnect.Fabric, error) {
	switch i {
	case PCIe3:
		return interconnect.PCIeTree(gpus, interconnect.PCIe3), nil
	case PCIe4:
		return interconnect.PCIeTree(gpus, interconnect.PCIe4), nil
	case PCIe5:
		return interconnect.PCIeTree(gpus, interconnect.PCIe5), nil
	case PCIe6:
		return interconnect.PCIeTree(gpus, interconnect.PCIe6), nil
	case NVLinkSwitch:
		return interconnect.NVSwitch(gpus, interconnect.NVLink2Bandwidth), nil
	case InfiniteBW:
		return interconnect.Infinite(gpus), nil
	}
	return nil, fmt.Errorf("gps: unknown interconnect %d", int(i))
}

// String names the fabric.
func (i Interconnect) String() string {
	switch i {
	case PCIe3:
		return "PCIe 3.0"
	case PCIe4:
		return "PCIe 4.0"
	case PCIe5:
		return "PCIe 5.0"
	case PCIe6:
		return "PCIe 6.0 (projected)"
	case NVLinkSwitch:
		return "NVLink+NVSwitch"
	case InfiniteBW:
		return "infinite bandwidth"
	}
	return fmt.Sprintf("Interconnect(%d)", int(i))
}

// L2Model re-exports the analytic cache model (per-application scaling of
// the L2 hit rate with GPU count).
type L2Model = trace.L2Model

// Config describes the simulated system.
type Config struct {
	// GPUs is the number of GPUs (1..64). Required.
	GPUs int
	// Interconnect selects the fabric (default PCIe4).
	Interconnect Interconnect
	// Paradigm selects the memory management technique (default GPS).
	Paradigm Paradigm
	// PageBytes overrides the 64 KB translation granularity.
	PageBytes uint64
	// WriteQueueEntries overrides the 512-entry GPS remote write queue.
	WriteQueueEntries int
	// GPSTLBEntries overrides the 32-entry GPS-TLB.
	GPSTLBEntries int
	// L2 sets the application's cache model (optional).
	L2 L2Model
}

// System accumulates a program — allocations, subscriptions, kernel
// launches — and runs it through the simulator.
type System struct {
	cfg        Config
	phases     []trace.Phase
	profileEnd int // phases recorded before TrackingStop; -1 = not tracking
	tracking   bool
	nextSlot   int
	buffers    map[string]*Buffer
	finished   bool
}

// NewSystem validates cfg and returns an empty System.
func NewSystem(cfg Config) (*System, error) {
	if cfg.GPUs < 1 || cfg.GPUs > 64 {
		return nil, fmt.Errorf("gps: GPU count %d out of range 1..64", cfg.GPUs)
	}
	if _, err := cfg.Paradigm.kind(); err != nil {
		return nil, err
	}
	if _, err := cfg.Interconnect.build(cfg.GPUs); err != nil {
		return nil, err
	}
	return &System{
		cfg:        cfg,
		profileEnd: -1,
		buffers:    map[string]*Buffer{},
	}, nil
}

// GPUs returns the configured GPU count.
func (s *System) GPUs() int { return s.cfg.GPUs }

// Buffer is one allocation in the simulated address space.
type Buffer struct {
	name   string
	base   uint64
	size   uint64
	shared bool
	manual []int // manual subscriber list, nil for automatic
	device int   // owner for pinned buffers
}

// Name returns the buffer's label.
func (b *Buffer) Name() string { return b.name }

// Size returns the allocation size in bytes.
func (b *Buffer) Size() uint64 { return b.size }

func (s *System) alloc(name string, size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("gps: zero-size allocation %q", name)
	}
	if size > 1<<33 {
		return 0, fmt.Errorf("gps: allocation %q exceeds 8 GB", name)
	}
	if _, dup := s.buffers[name]; dup {
		return 0, fmt.Errorf("gps: buffer %q already allocated", name)
	}
	s.nextSlot++
	return uint64(s.nextSlot) << 33, nil
}

// MallocGPS allocates a buffer in the GPS address space with automatic
// subscription management (cudaMallocGPS): all GPUs are tentatively
// subscribed; profiling unsubscribes non-consumers.
func (s *System) MallocGPS(name string, size uint64) (*Buffer, error) {
	base, err := s.alloc(name, size)
	if err != nil {
		return nil, err
	}
	b := &Buffer{name: name, base: base, size: size, shared: true}
	s.buffers[name] = b
	return b, nil
}

// MallocGPSManual allocates a GPS buffer whose subscriptions are managed
// explicitly (the optional manual parameter of cudaMallocGPS). Profiling
// never unsubscribes it; adjust the set with Subscribe/Unsubscribe before
// launching kernels.
func (s *System) MallocGPSManual(name string, size uint64, subscribers ...int) (*Buffer, error) {
	if len(subscribers) == 0 {
		return nil, fmt.Errorf("gps: manual buffer %q needs at least one subscriber", name)
	}
	for _, g := range subscribers {
		if g < 0 || g >= s.cfg.GPUs {
			return nil, fmt.Errorf("gps: subscriber GPU %d out of range", g)
		}
	}
	base, err := s.alloc(name, size)
	if err != nil {
		return nil, err
	}
	b := &Buffer{name: name, base: base, size: size, shared: true,
		manual: append([]int{}, subscribers...)}
	s.buffers[name] = b
	return b, nil
}

// Malloc allocates GPU-pinned memory on device (cudaMalloc): never
// replicated or migrated by any paradigm.
func (s *System) Malloc(name string, size uint64, device int) (*Buffer, error) {
	if device < 0 || device >= s.cfg.GPUs {
		return nil, fmt.Errorf("gps: device %d out of range", device)
	}
	base, err := s.alloc(name, size)
	if err != nil {
		return nil, err
	}
	b := &Buffer{name: name, base: base, size: size, device: device}
	s.buffers[name] = b
	return b, nil
}

// Subscribe adds device to a manual buffer's subscriber set
// (cuMemAdvise with CU_MEM_ADVISE_GPS_SUBSCRIBE).
func (s *System) Subscribe(b *Buffer, device int) error {
	if b.manual == nil {
		return fmt.Errorf("gps: buffer %q uses automatic subscription", b.name)
	}
	if device < 0 || device >= s.cfg.GPUs {
		return fmt.Errorf("gps: device %d out of range", device)
	}
	for _, g := range b.manual {
		if g == device {
			return nil
		}
	}
	b.manual = append(b.manual, device)
	return nil
}

// Unsubscribe removes device from a manual buffer's subscriber set
// (cuMemAdvise with CU_MEM_ADVISE_GPS_UNSUBSCRIBE). Removing the last
// subscriber fails, as in the paper.
func (s *System) Unsubscribe(b *Buffer, device int) error {
	if b.manual == nil {
		return fmt.Errorf("gps: buffer %q uses automatic subscription", b.name)
	}
	if len(b.manual) == 1 && b.manual[0] == device {
		return fmt.Errorf("gps: cannot unsubscribe the last subscriber of %q", b.name)
	}
	for i, g := range b.manual {
		if g == device {
			b.manual = append(b.manual[:i], b.manual[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("gps: device %d is not subscribed to %q", device, b.name)
}

// TrackingStart begins the GPS profiling window (cuGPSTrackingStart). Call
// before launching the first iteration's kernels.
func (s *System) TrackingStart() error {
	if s.tracking {
		return fmt.Errorf("gps: tracking already active")
	}
	if s.profileEnd >= 0 {
		return fmt.Errorf("gps: tracking window already closed")
	}
	if len(s.phases) != 0 {
		return fmt.Errorf("gps: TrackingStart must precede the first launch")
	}
	s.tracking = true
	return nil
}

// TrackingStop ends the profiling window (cuGPSTrackingStop): every GPS
// page keeps only the subscribers that touched it during the window.
func (s *System) TrackingStop() error {
	if !s.tracking {
		return fmt.Errorf("gps: tracking not active")
	}
	if len(s.phases) == 0 {
		return fmt.Errorf("gps: empty tracking window")
	}
	s.tracking = false
	s.profileEnd = len(s.phases)
	return nil
}
