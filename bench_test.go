package gps

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each iteration regenerates the corresponding experiment at
// reduced trace length (the rendered rows match EXPERIMENTS.md's shapes;
// `go run ./cmd/gpsbench -all` produces the full-length versions). Derived
// headline metrics are attached via ReportMetric so `go test -bench .`
// output doubles as a results summary:
//
//	gps_mean_x      mean 4-GPU GPS speedup        (paper: 3.0x)
//	opportunity_pct share of the infinite-BW bound (paper: 93.7%)
//	vs_next_best_x  GPS over the next paradigm     (paper: 2.3x)

import (
	"context"
	"testing"

	"gps/internal/experiments"
)

func benchOpts() experiments.Options {
	return experiments.Options{Iterations: 2, Quick: true}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Figure3().Rows() != 5 {
			b.Fatal("bad platform table")
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Figure8(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gpsMean, frac, vsNext := experiments.Claims71(tb)
		b.ReportMetric(gpsMean, "gps_mean_x")
		b.ReportMetric(frac*100, "opportunity_pct")
		b.ReportMetric(vsNext, "vs_next_best_x")
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Figure12(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gpsMean, frac := experiments.Claims73(tb)
		b.ReportMetric(gpsMean, "gps16_mean_x")
		b.ReportMetric(frac*100, "opportunity16_pct")
	}
}

func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure14(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSensitivityGPSTLB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SensitivityGPSTLB(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSensitivityPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.SensitivityPageSize(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((tb.Value(0, 0)-1)*100, "slowdown4KB_pct")
		b.ReportMetric((tb.Value(2, 0)-1)*100, "slowdown2MB_pct")
	}
}

func BenchmarkAblationWatermark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationWatermark(context.Background(), benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPIRun measures an end-to-end run of a user program
// recorded through the public API.
func BenchmarkPublicAPIRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(Config{GPUs: 4, Interconnect: PCIe4, Paradigm: ParadigmGPS})
		if err != nil {
			b.Fatal(err)
		}
		buf, err := sys.MallocGPS("grid", 4<<20)
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.TrackingStart(); err != nil {
			b.Fatal(err)
		}
		per := uint64(1 << 20)
		for it := 0; it < 3; it++ {
			var ks []*KernelBuilder
			for dev := 0; dev < 4; dev++ {
				ks = append(ks, sys.NewKernel(dev, "k").
					Load(buf, uint64(dev)*per, per).
					Store(buf, uint64(dev)*per, per).
					Compute(1e7))
			}
			if err := sys.Launch(ks...); err != nil {
				b.Fatal(err)
			}
			if it == 0 {
				if err := sys.TrackingStop(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := sys.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
