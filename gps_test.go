package gps

import (
	"strings"
	"testing"
)

// buildHaloProgram records a small 2-GPU halo-exchange program: two
// ping-pong arrays, each GPU writes its half and reads one halo line block
// from its neighbor, for iters half-steps. The tracking window covers the
// first two half-steps — a full ping-pong iteration, as in the paper's
// Listing 1 — so both arrays' read sets are profiled.
func buildHaloProgram(t *testing.T, cfg Config, iters int) (*System, *Buffer, *Buffer) {
	t.Helper()
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const arr = 1 << 20 // 1 MB per array
	a, err := sys.MallocGPS("a", arr)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.MallocGPS("b", arr)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrackingStart(); err != nil {
		t.Fatal(err)
	}
	half := uint64(arr / 2)
	halo := uint64(64 << 10)
	for it := 0; it < iters; it++ {
		src, dst := a, b
		if it%2 == 1 {
			src, dst = b, a
		}
		k0 := sys.NewKernel(0, "sweep0").
			Compute(50e6).
			Load(src, 0, half+halo). // own half plus neighbor halo
			Store(dst, 0, half)
		k1 := sys.NewKernel(1, "sweep1").
			Compute(50e6).
			Load(src, half-halo, half+halo).
			Store(dst, half, half)
		if err := sys.Launch(k0, k1); err != nil {
			t.Fatal(err)
		}
		if it == 1 {
			if err := sys.TrackingStop(); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sys, a, b
}

func TestQuickstartEndToEnd(t *testing.T) {
	sys, _, _ := buildHaloProgram(t, Config{GPUs: 2, Interconnect: PCIe4, Paradigm: ParadigmGPS}, 4)
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.SteadyTime <= 0 || res.SteadyTime > res.TotalTime {
		t.Fatalf("times: %+v", res)
	}
	if res.SubscriberHistogram == nil {
		t.Fatal("GPS run lacks subscriber histogram")
	}
	// Interior pages must have been unsubscribed down to one subscriber;
	// halo pages keep two.
	if res.SubscriberHistogram[1] == 0 || res.SubscriberHistogram[2] == 0 {
		t.Fatalf("histogram = %v, want both 1- and 2-subscriber pages", res.SubscriberHistogram)
	}
	if res.InterconnectBytes == 0 {
		t.Fatal("halo exchange must move data")
	}
	if !strings.Contains(res.String(), "GPS") {
		t.Fatalf("String() = %q", res.String())
	}
}

func TestRunWithComparesParadigms(t *testing.T) {
	sys, _, _ := buildHaloProgram(t, Config{GPUs: 2, Interconnect: PCIe3, Paradigm: ParadigmGPS}, 4)
	gpsRes, err := sys.RunWith(ParadigmGPS, PCIe3)
	if err != nil {
		t.Fatal(err)
	}
	umRes, err := sys.RunWith(ParadigmUM, PCIe3)
	if err != nil {
		t.Fatal(err)
	}
	infRes, err := sys.RunWith(ParadigmInfinite, InfiniteBW)
	if err != nil {
		t.Fatal(err)
	}
	if gpsRes.SteadyTime >= umRes.SteadyTime {
		t.Fatalf("GPS (%v) should beat UM (%v)", gpsRes.SteadyTime, umRes.SteadyTime)
	}
	if infRes.SteadyTime > gpsRes.SteadyTime {
		t.Fatal("infinite BW must lower-bound GPS")
	}
	if umRes.PageFaults == 0 {
		t.Fatal("UM run should fault")
	}
	if gpsRes.PageFaults != 0 {
		t.Fatal("GPS run should not fault")
	}
}

func TestManualSubscription(t *testing.T) {
	sys, err := NewSystem(Config{GPUs: 4, Interconnect: PCIe4, Paradigm: ParadigmGPS})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := sys.MallocGPSManual("shared", 1<<20, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Subscribe(buf, 2); err != nil {
		t.Fatal(err)
	}
	if err := sys.Unsubscribe(buf, 1); err != nil {
		t.Fatal(err)
	}
	// Cannot remove below one subscriber.
	if err := sys.Unsubscribe(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Unsubscribe(buf, 2); err == nil {
		t.Fatal("unsubscribing the last subscriber should fail")
	}
	// Unsubscribing a non-member fails.
	if err := sys.Unsubscribe(buf, 3); err == nil {
		t.Fatal("unsubscribing a non-member should fail")
	}
	// Manual pages keep their set through a run even with tracking.
	k := sys.NewKernel(2, "writer").Compute(1e6).Store(buf, 0, 1<<20)
	if err := sys.Launch(k); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.SubscriberHistogram == nil {
		t.Fatal("no histogram")
	}
}

func TestManualBufferValidation(t *testing.T) {
	sys, _ := NewSystem(Config{GPUs: 2})
	if _, err := sys.MallocGPSManual("x", 1<<20); err == nil {
		t.Fatal("empty subscriber list accepted")
	}
	if _, err := sys.MallocGPSManual("x", 1<<20, 5); err == nil {
		t.Fatal("out-of-range subscriber accepted")
	}
	auto, _ := sys.MallocGPS("auto", 1<<20)
	if err := sys.Subscribe(auto, 1); err == nil {
		t.Fatal("Subscribe on automatic buffer should fail")
	}
}

func TestAllocationValidation(t *testing.T) {
	sys, _ := NewSystem(Config{GPUs: 2})
	if _, err := sys.MallocGPS("z", 0); err == nil {
		t.Fatal("zero-size accepted")
	}
	if _, err := sys.MallocGPS("big", 1<<34); err == nil {
		t.Fatal("oversized accepted")
	}
	if _, err := sys.MallocGPS("dup", 1<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.MallocGPS("dup", 1<<20); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := sys.Malloc("pinned", 1<<20, 9); err == nil {
		t.Fatal("bad device accepted")
	}
}

func TestKernelValidation(t *testing.T) {
	sys, _ := NewSystem(Config{GPUs: 2})
	buf, _ := sys.MallocGPS("b", 1<<20)
	// Out-of-range access surfaces at Launch.
	bad := sys.NewKernel(0, "bad").Load(buf, 1<<20, 128)
	if err := sys.Launch(bad); err == nil {
		t.Fatal("out-of-range access accepted")
	}
	// Bad device.
	if err := sys.Launch(sys.NewKernel(7, "dev").Compute(1)); err == nil {
		t.Fatal("bad device accepted")
	}
	// Two kernels on one device in one phase.
	k1 := sys.NewKernel(0, "a").Compute(1)
	k2 := sys.NewKernel(0, "b").Compute(1)
	if err := sys.Launch(k1, k2); err == nil {
		t.Fatal("duplicate device accepted")
	}
	// Empty kernel.
	if err := sys.Launch(sys.NewKernel(0, "idle")); err == nil {
		t.Fatal("empty kernel accepted")
	}
	// Empty launch.
	if err := sys.Launch(); err == nil {
		t.Fatal("empty launch accepted")
	}
}

func TestTrackingWindowRules(t *testing.T) {
	sys, _ := NewSystem(Config{GPUs: 2})
	buf, _ := sys.MallocGPS("b", 1<<20)
	if err := sys.TrackingStop(); err == nil {
		t.Fatal("TrackingStop before start accepted")
	}
	if err := sys.TrackingStart(); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrackingStart(); err == nil {
		t.Fatal("double TrackingStart accepted")
	}
	if err := sys.TrackingStop(); err == nil {
		t.Fatal("empty tracking window accepted")
	}
	if err := sys.Launch(sys.NewKernel(0, "k").Store(buf, 0, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if err := sys.TrackingStop(); err != nil {
		t.Fatal(err)
	}
	// Run with an open window is rejected.
	sys2, _ := NewSystem(Config{GPUs: 2})
	b2, _ := sys2.MallocGPS("b", 1<<20)
	sys2.TrackingStart()
	sys2.Launch(sys2.NewKernel(0, "k").Store(b2, 0, 1<<20))
	if _, err := sys2.Run(); err == nil {
		t.Fatal("Run with open tracking window accepted")
	}
}

func TestRunWithoutKernelsFails(t *testing.T) {
	sys, _ := NewSystem(Config{GPUs: 2})
	if _, err := sys.Run(); err != nil {
		if !strings.Contains(err.Error(), "no kernels") {
			t.Fatalf("unexpected error: %v", err)
		}
	} else {
		t.Fatal("empty run accepted")
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(Config{GPUs: 0}); err == nil {
		t.Fatal("zero GPUs accepted")
	}
	if _, err := NewSystem(Config{GPUs: 100}); err == nil {
		t.Fatal("too many GPUs accepted")
	}
	if _, err := NewSystem(Config{GPUs: 2, Paradigm: Paradigm(99)}); err == nil {
		t.Fatal("bad paradigm accepted")
	}
	if _, err := NewSystem(Config{GPUs: 2, Interconnect: Interconnect(99)}); err == nil {
		t.Fatal("bad interconnect accepted")
	}
}

func TestEnumStrings(t *testing.T) {
	for _, p := range Paradigms() {
		if strings.HasPrefix(p.String(), "Paradigm(") {
			t.Errorf("paradigm %d lacks a name", int(p))
		}
	}
	for _, ic := range []Interconnect{PCIe3, PCIe4, PCIe5, PCIe6, NVLinkSwitch, InfiniteBW} {
		if strings.HasPrefix(ic.String(), "Interconnect(") {
			t.Errorf("interconnect %d lacks a name", int(ic))
		}
	}
}

func TestHigherBandwidthHelpsUserProgram(t *testing.T) {
	sys, _, _ := buildHaloProgram(t, Config{GPUs: 2, Paradigm: ParadigmMemcpy}, 4)
	slow, err := sys.RunWith(ParadigmMemcpy, PCIe3)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := sys.RunWith(ParadigmMemcpy, PCIe6)
	if err != nil {
		t.Fatal(err)
	}
	if fast.SteadyTime > slow.SteadyTime {
		t.Fatalf("PCIe6 (%v) slower than PCIe3 (%v)", fast.SteadyTime, slow.SteadyTime)
	}
}

func TestNewParadigmVariantsRun(t *testing.T) {
	sys, _, _ := buildHaloProgram(t, Config{GPUs: 2, Interconnect: PCIe4, Paradigm: ParadigmGPS}, 4)
	gpsRes, err := sys.RunWith(ParadigmGPS, PCIe4)
	if err != nil {
		t.Fatal(err)
	}
	// Unsubscribed-by-default: same steady state, pricier profiling.
	unsub, err := sys.RunWith(ParadigmGPSUnsubDefault, PCIe4)
	if err != nil {
		t.Fatal(err)
	}
	if r := unsub.SteadyTime / gpsRes.SteadyTime; r < 0.9 || r > 1.1 {
		t.Fatalf("steady states diverge: %v", r)
	}
	if unsub.TotalTime <= gpsRes.TotalTime {
		t.Fatal("unsubscribed-by-default profiling should cost more in total")
	}
	// Pipelined memcpy improves on plain memcpy.
	mc, err := sys.RunWith(ParadigmMemcpy, PCIe4)
	if err != nil {
		t.Fatal(err)
	}
	async, err := sys.RunWith(ParadigmMemcpyAsync, PCIe4)
	if err != nil {
		t.Fatal(err)
	}
	if async.SteadyTime > mc.SteadyTime*1.001 {
		t.Fatalf("pipelining slowed memcpy: %v vs %v", async.SteadyTime, mc.SteadyTime)
	}
	if gpsRes.SteadyTime > async.SteadyTime*1.001 {
		t.Fatal("GPS should match or beat pipelined memcpy")
	}
}

func TestResultBreakdownAttribution(t *testing.T) {
	sys, _, _ := buildHaloProgram(t, Config{GPUs: 2, Interconnect: PCIe3, Paradigm: ParadigmMemcpy}, 4)
	mc, err := sys.RunWith(ParadigmMemcpy, PCIe3)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Breakdown.Bulk <= 0 {
		t.Fatal("memcpy run should spend time in bulk transfers")
	}
	if mc.Breakdown.Kernel <= 0 || mc.Breakdown.Overhead <= 0 {
		t.Fatalf("breakdown incomplete: %+v", mc.Breakdown)
	}
	um, err := sys.RunWith(ParadigmUM, PCIe3)
	if err != nil {
		t.Fatal(err)
	}
	if um.Breakdown.Stall <= mc.Breakdown.Stall {
		t.Fatal("UM should stall more than memcpy")
	}
	inf, err := sys.RunWith(ParadigmInfinite, InfiniteBW)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Breakdown.Bulk != 0 || inf.Breakdown.Stall != 0 {
		t.Fatalf("infinite run should have no transfer time: %+v", inf.Breakdown)
	}
}
