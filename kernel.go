package gps

import (
	"fmt"

	"gps/internal/trace"
)

// lineBytes is the modeled cache block size (Table 1).
const lineBytes = 128

// KernelBuilder assembles one kernel launch's memory access stream. Methods
// chain; the kernel executes when passed to Launch.
type KernelBuilder struct {
	sys *System
	k   trace.Kernel
	err error
}

// NewKernel starts building a kernel for device.
func (s *System) NewKernel(device int, name string) *KernelBuilder {
	kb := &KernelBuilder{sys: s, k: trace.Kernel{GPU: device, Name: name}}
	if device < 0 || device >= s.cfg.GPUs {
		kb.err = fmt.Errorf("gps: kernel %q on device %d out of range", name, device)
	}
	return kb
}

// Compute declares the kernel's arithmetic work in floating point ops.
func (k *KernelBuilder) Compute(ops uint64) *KernelBuilder {
	k.k.ComputeOps += ops
	return k
}

// LocalStream declares GPU-local streaming traffic (temporaries,
// coefficient tables) the kernel performs beyond its recorded shared
// accesses.
func (k *KernelBuilder) LocalStream(bytes uint64) *KernelBuilder {
	k.k.LocalStreamBytes += bytes
	return k
}

func (k *KernelBuilder) checkRange(b *Buffer, off, bytes uint64) bool {
	if k.err != nil {
		return false
	}
	if b == nil {
		k.err = fmt.Errorf("gps: kernel %q accesses nil buffer", k.k.Name)
		return false
	}
	if off+bytes > b.size {
		k.err = fmt.Errorf("gps: kernel %q accesses [%d,%d) beyond %q (%d bytes)",
			k.k.Name, off, off+bytes, b.name, b.size)
		return false
	}
	return true
}

// Load streams contiguous reads over b[off : off+bytes).
func (k *KernelBuilder) Load(b *Buffer, off, bytes uint64) *KernelBuilder {
	if !k.checkRange(b, off, bytes) {
		return k
	}
	for o := uint64(0); o < bytes; o += lineBytes {
		k.k.Accesses = append(k.k.Accesses, trace.Access{
			Op: trace.OpLoad, Pattern: trace.PatContiguous,
			Threads: 32, ElemBytes: 4, Addr: b.base + off + o,
		})
	}
	return k
}

// Store streams contiguous writes over b[off : off+bytes).
func (k *KernelBuilder) Store(b *Buffer, off, bytes uint64) *KernelBuilder {
	if !k.checkRange(b, off, bytes) {
		return k
	}
	for o := uint64(0); o < bytes; o += lineBytes {
		k.k.Accesses = append(k.k.Accesses, trace.Access{
			Op: trace.OpStore, Pattern: trace.PatContiguous,
			Threads: 32, ElemBytes: 4, Addr: b.base + off + o,
		})
	}
	return k
}

// StoreMultiPass writes b[off : off+bytes) in `passes` sweeps over tiles of
// blockLines cache lines — the revisit pattern the GPS write queue
// coalesces.
func (k *KernelBuilder) StoreMultiPass(b *Buffer, off, bytes uint64, passes, blockLines int) *KernelBuilder {
	if !k.checkRange(b, off, bytes) {
		return k
	}
	if passes < 1 || blockLines < 1 {
		k.err = fmt.Errorf("gps: kernel %q: invalid multipass geometry", k.k.Name)
		return k
	}
	lines := bytes / lineBytes
	for start := uint64(0); start < lines; start += uint64(blockLines) {
		end := start + uint64(blockLines)
		if end > lines {
			end = lines
		}
		for p := 0; p < passes; p++ {
			for l := start; l < end; l++ {
				k.k.Accesses = append(k.k.Accesses, trace.Access{
					Op: trace.OpStore, Pattern: trace.PatContiguous,
					Threads: 32, ElemBytes: 4, Addr: b.base + off + l*lineBytes,
				})
			}
		}
	}
	return k
}

// LoadScatter issues `warps` warp loads whose lanes hit pseudo-random cache
// lines within b[off : off+window).
func (k *KernelBuilder) LoadScatter(b *Buffer, off, window uint64, warps int, seed uint32) *KernelBuilder {
	return k.scatter(trace.OpLoad, b, off, window, warps, seed)
}

// AtomicScatter issues `warps` warp atomics within b[off : off+window).
// Atomics are never coalesced by the GPS write queue.
func (k *KernelBuilder) AtomicScatter(b *Buffer, off, window uint64, warps int, seed uint32) *KernelBuilder {
	return k.scatter(trace.OpAtomic, b, off, window, warps, seed)
}

func (k *KernelBuilder) scatter(op trace.Op, b *Buffer, off, window uint64, warps int, seed uint32) *KernelBuilder {
	if !k.checkRange(b, off, window) {
		return k
	}
	windowLines := window / lineBytes
	if windowLines == 0 {
		k.err = fmt.Errorf("gps: kernel %q: scatter window below one line", k.k.Name)
		return k
	}
	for i := 0; i < warps; i++ {
		k.k.Accesses = append(k.k.Accesses, trace.Access{
			Op: op, Pattern: trace.PatScattered,
			Threads: 32, ElemBytes: 4,
			Stride: uint32(windowLines),
			Seed:   seed + uint32(i)*2654435761,
			Addr:   b.base + off,
		})
	}
	return k
}

// FenceSys issues a sys-scoped memory fence: the GPS write queue flushes
// and all prior stores become visible system-wide.
func (k *KernelBuilder) FenceSys() *KernelBuilder {
	k.k.Accesses = append(k.k.Accesses, trace.Access{Op: trace.OpFence, Scope: trace.ScopeSys})
	return k
}

// Launch records one phase: the given kernels run concurrently (at most one
// per device) and a global barrier (with its implicit sys-scoped release)
// ends the phase.
func (s *System) Launch(kernels ...*KernelBuilder) error {
	if s.finished {
		return fmt.Errorf("gps: system already ran")
	}
	if len(kernels) == 0 {
		return fmt.Errorf("gps: empty launch")
	}
	ph := trace.Phase{Index: len(s.phases)}
	seen := map[int]bool{}
	for _, kb := range kernels {
		if kb.err != nil {
			return kb.err
		}
		if seen[kb.k.GPU] {
			return fmt.Errorf("gps: two kernels on device %d in one phase", kb.k.GPU)
		}
		seen[kb.k.GPU] = true
		if len(kb.k.Accesses) == 0 && kb.k.ComputeOps == 0 {
			return fmt.Errorf("gps: kernel %q does nothing", kb.k.Name)
		}
		ph.Kernels = append(ph.Kernels, kb.k)
	}
	s.phases = append(s.phases, ph)
	return nil
}
